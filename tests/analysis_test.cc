// Unit tests for the consult-time program analyzer (src/analysis): call
// graph + SCCs, the stratification verdict, safety lints, the auto-table
// and index advisors, style lints, and the analyze/1 builtin.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/to_datalog.h"
#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

using analysis::AnalysisResult;
using analysis::DiagCode;
using analysis::Diagnostic;
using analysis::Severity;

const Diagnostic* FindCode(const AnalysisResult& result, DiagCode code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string PredName(Engine& engine, FunctorId f) {
  return engine.symbols().AtomName(engine.symbols().FunctorAtom(f)) + "/" +
         std::to_string(engine.symbols().FunctorArity(f));
}

// --- Call graph / SCCs -------------------------------------------------------

TEST(AnalyzerScc, StratifiedProgramHasExpectedComponents) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  // Two defined predicates: edge/2 (leaf) and path/2 (self-recursive).
  EXPECT_EQ(result.sccs.size(), 2u);
  EXPECT_TRUE(result.stratified());
  EXPECT_FALSE(result.widened);

  int recursive = 0;
  for (const analysis::SccInfo& scc : result.sccs) {
    if (scc.recursive) ++recursive;
    EXPECT_FALSE(scc.negative_internal);
  }
  EXPECT_EQ(recursive, 1);
  // path already tabled: the advisor has nothing to say.
  EXPECT_TRUE(result.table_suggestions.empty());
}

TEST(AnalyzerScc, MutualRecursionFormsOneComponent) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("even(0).\n"
                                 "even(X) :- X > 0, Y is X - 1, odd(Y).\n"
                                 "odd(X) :- X > 0, Y is X - 1, even(Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  // even/1 and odd/1 share one SCC.
  ASSERT_EQ(result.sccs.size(), 1u);
  EXPECT_EQ(result.sccs[0].members.size(), 2u);
  EXPECT_TRUE(result.sccs[0].recursive);
  EXPECT_TRUE(result.stratified());
  // Both are advised for tabling.
  EXPECT_EQ(result.table_suggestions.size(), 2u);
}

TEST(AnalyzerScc, VariableGoalWidensTheGraph) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("run(G) :- G.\n"
                                 "helper(1).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  EXPECT_TRUE(result.widened);
}

// --- Stratification (S001) ---------------------------------------------------

TEST(AnalyzerStratification, NegationInsideSccIsDiagnosedAtConsultTime) {
  Engine engine;
  // No query runs: the diagnostic must appear from ConsultString alone.
  ASSERT_TRUE(engine
                  .ConsultString(":- table win/1.\n"
                                 "win(X) :- move(X,Y), tnot win(Y).\n"
                                 "move(a,b). move(b,a).\n")
                  .ok());
  const std::vector<Diagnostic>& diags =
      engine.program().analysis_diagnostics();
  const Diagnostic* s001 = nullptr;
  for (const Diagnostic& d : diags) {
    if (d.code == DiagCode::kNonStratified) s001 = &d;
  }
  ASSERT_NE(s001, nullptr);
  EXPECT_EQ(s001->severity, Severity::kError);
  // The span points at the offending clause (line 2 of the consult unit).
  EXPECT_TRUE(s001->span.known());
  EXPECT_EQ(s001->span.line, 2);
  EXPECT_NE(s001->span.file, 0u);

  AnalysisResult result = engine.Analyze();
  EXPECT_FALSE(result.stratified());
  ASSERT_NE(FindCode(result, DiagCode::kNonStratified), nullptr);
}

TEST(AnalyzerStratification, AggregationInsideSccIsDiagnosed) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(
                      "p(X) :- findall(Y, p(Y), L), member_of(X, L).\n"
                      "member_of(X, [X|_]).\n"
                      "member_of(X, [_|T]) :- member_of(X, T).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  EXPECT_FALSE(result.stratified());
  const Diagnostic* s001 = FindCode(result, DiagCode::kNonStratified);
  ASSERT_NE(s001, nullptr);
  EXPECT_NE(s001->message.find("aggregation"), std::string::npos);
}

TEST(AnalyzerStratification, StrictModeFailsTheConsult) {
  Engine::Options options;
  options.strict_analysis = true;
  Engine engine(options);
  Status status = engine.ConsultString(
      ":- table win/1.\n"
      "win(X) :- move(X,Y), tnot win(Y).\n"
      "move(a,b). move(b,a).\n");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kStratification);
  EXPECT_NE(status.message().find("S001"), std::string::npos);
}

TEST(AnalyzerStratification, RuntimeErrorCitesTheConsultTimeVerdict) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table win/1.\n"
                                 "win(X) :- move(X,Y), tnot win(Y).\n"
                                 "move(a,b). move(b,a).\n")
                  .ok());
  Result<bool> held = engine.Holds("win(a)");
  ASSERT_FALSE(held.ok());
  EXPECT_EQ(held.status().code(), ErrorCode::kStratification);
  // The runtime failure reuses the analyzer's message, span included.
  EXPECT_NE(held.status().message().find("S001"), std::string::npos);
  EXPECT_NE(held.status().message().find(":2:"), std::string::npos);
}

// --- Safety (S002-S004) ------------------------------------------------------

TEST(AnalyzerSafety, UnboundVariableUnderNegation) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("q(1). r(1).\n"
                                 "p :- q(X), \\+ r(Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* s002 = FindCode(result, DiagCode::kUnsafeNegation);
  ASSERT_NE(s002, nullptr);
  EXPECT_EQ(PredName(engine, s002->functor), "p/0");
  // X is bound by q(X) before the negation: only Y is unsafe, and the
  // variant with both bound is clean.
  Engine clean;
  ASSERT_TRUE(clean
                  .ConsultString("q(1). r(1).\n"
                                 "p :- q(X), \\+ r(X).\n")
                  .ok());
  EXPECT_EQ(FindCode(clean.Analyze(), DiagCode::kUnsafeNegation), nullptr);
}

TEST(AnalyzerSafety, HeadVariableNotRangeRestricted) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("q(1).\nh(X) :- q(_).\n").ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* s003 = FindCode(result, DiagCode::kUnsafeHead);
  ASSERT_NE(s003, nullptr);
  EXPECT_EQ(PredName(engine, s003->functor), "h/1");
}

TEST(AnalyzerSafety, FactWithVariableIsFlagged) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("universal(X).\n").ok());
  EXPECT_NE(FindCode(engine.Analyze(), DiagCode::kUnsafeHead), nullptr);
}

TEST(AnalyzerSafety, ArithmeticOverUnboundVariable) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("q(1).\n"
                                 "bad :- Y is Z + 1, q(Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* s004 = FindCode(result, DiagCode::kUnsafeArith);
  ASSERT_NE(s004, nullptr);
  EXPECT_EQ(PredName(engine, s004->functor), "bad/0");
  // Head variables are assumed caller-bound: f(X,Y) :- Y is X + 1 is fine.
  Engine clean;
  ASSERT_TRUE(clean.ConsultString("f(X, Y) :- Y is X + 1.\n").ok());
  EXPECT_EQ(FindCode(clean.Analyze(), DiagCode::kUnsafeArith), nullptr);
}

// --- Advisors (A001, A002) ---------------------------------------------------

TEST(AnalyzerAdvisors, AutoTableSuggestsRecursivePredicates) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,1).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  ASSERT_EQ(result.table_suggestions.size(), 1u);
  EXPECT_EQ(PredName(engine, result.table_suggestions[0]), "path/2");
  EXPECT_NE(FindCode(result, DiagCode::kAutoTable), nullptr);
}

TEST(AnalyzerAdvisors, AutoTableDirectiveMakesLeftRecursionTerminate) {
  // Left recursion over a cyclic graph loops forever under plain SLD; with
  // :- auto_table. the advisor's suggestions are applied and SLG answers.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- auto_table.\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "edge(1,2). edge(2,1).\n")
                  .ok());
  EXPECT_TRUE(engine.program()
                  .Lookup(engine.symbols().InternFunctor(
                      engine.symbols().InternAtom("path"), 2))
                  ->tabled());
  Result<size_t> count = engine.Count("path(1, X)");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 2u);  // path(1,1) and path(1,2)
}

TEST(AnalyzerAdvisors, IndexAdvisorReadsCallSiteBindings) {
  Engine engine;
  // Every call site of big/2 binds argument 2 and leaves argument 1 open:
  // the default first-argument index never applies.
  ASSERT_TRUE(engine
                  .ConsultString("big(a, 1). big(b, 2). big(c, 3).\n"
                                 "key(2). key(3).\n"
                                 "hit(X) :- key(K), big(X, K).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  ASSERT_EQ(result.index_suggestions.size(), 1u);
  EXPECT_EQ(PredName(engine, result.index_suggestions[0].first), "big/2");
  EXPECT_EQ(result.index_suggestions[0].second, 2);
  const Diagnostic* a002 = FindCode(result, DiagCode::kIndexAdvice);
  ASSERT_NE(a002, nullptr);
  EXPECT_NE(a002->message.find(":- index(big/2, 2)"), std::string::npos);

  // With the first argument bound at some call site there is no advice.
  Engine clean;
  ASSERT_TRUE(clean
                  .ConsultString("big(a, 1). big(b, 2).\n"
                                 "hit :- big(a, _).\n")
                  .ok());
  EXPECT_TRUE(clean.Analyze().index_suggestions.empty());
}

TEST(AnalyzerAdvisors, StructureKeyedPredicatesCountAsIndexed) {
  // size/2 keys argument 1 on functors (plus one constant); since
  // switch_on_structure those bound call sites dispatch through the
  // structure table, so the advisor must not suggest an alternate index
  // and must not flag the dispatch as chain-bound.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("size(box(W, H), A) :- A is W * H.\n"
                                 "size(ball(R), A) :- A is 3 * R.\n"
                                 "size(nil, 0).\n"
                                 "probe(A) :- size(box(2, 3), A).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  EXPECT_TRUE(result.index_suggestions.empty());
  EXPECT_EQ(FindCode(result, DiagCode::kIndexAdvice), nullptr);
  EXPECT_EQ(FindCode(result, DiagCode::kChainDispatch), nullptr);
}

TEST(AnalyzerAdvisors, VarKeyedClauseIsFlaggedAsChainDispatch) {
  // One variable-keyed clause in an otherwise keyed set disables the
  // first-argument switch for the whole predicate: A003 points at the
  // offending clause.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("size(box(W, H), A) :- A is W * H.\n"
                                 "size(nil, 0).\n"
                                 "size(_Any, unknown).\n"
                                 "probe(A) :- size(box(2, 3), A).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* a003 = FindCode(result, DiagCode::kChainDispatch);
  ASSERT_NE(a003, nullptr);
  EXPECT_EQ(PredName(engine, a003->functor), "size/2");
  EXPECT_NE(a003->message.find("variable"), std::string::npos);
  EXPECT_EQ(a003->span.line, 3);

  // All-variable heads are ordinary Prolog — nothing to switch on, so no
  // clause is singled out and the advisor stays silent.
  Engine plain;
  ASSERT_TRUE(plain
                  .ConsultString("path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2).\n"
                                 "go :- path(1, _).\n")
                  .ok());
  EXPECT_EQ(FindCode(plain.Analyze(), DiagCode::kChainDispatch), nullptr);
}

// --- Lints (L001-L003) -------------------------------------------------------

TEST(AnalyzerLints, SingletonVariableCarriesNameAndSpan) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("q(1).\np(X, Y) :- q(X).\n").ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* l001 = FindCode(result, DiagCode::kSingletonVar);
  ASSERT_NE(l001, nullptr);
  EXPECT_NE(l001->message.find("Y"), std::string::npos);
  EXPECT_EQ(l001->span.line, 2);

  // Underscore-prefixed names opt out, as is conventional.
  Engine clean;
  ASSERT_TRUE(clean.ConsultString("q(1).\np(X, _Y) :- q(X).\n").ok());
  EXPECT_EQ(FindCode(clean.Analyze(), DiagCode::kSingletonVar), nullptr);
}

TEST(AnalyzerLints, DiscontiguousClausesAreFlagged) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("a(1).\nb(1).\na(2).\n").ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* l002 = FindCode(result, DiagCode::kDiscontiguous);
  ASSERT_NE(l002, nullptr);
  EXPECT_EQ(PredName(engine, l002->functor), "a/1");

  Engine declared;
  ASSERT_TRUE(
      declared
          .ConsultString(":- discontiguous a/1.\na(1).\nb(1).\na(2).\n")
          .ok());
  EXPECT_EQ(FindCode(declared.Analyze(), DiagCode::kDiscontiguous), nullptr);
}

TEST(AnalyzerLints, UnknownPredicateCallsAreFlagged) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("p :- missing_thing(1).\n").ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* l003 = FindCode(result, DiagCode::kUnknownPredicate);
  ASSERT_NE(l003, nullptr);
  EXPECT_EQ(PredName(engine, l003->functor), "missing_thing/1");

  // A dynamic declaration silences it: calling an empty dynamic predicate
  // is ordinary.
  Engine declared;
  ASSERT_TRUE(declared
                  .ConsultString(":- dynamic missing_thing/1.\n"
                                 "p :- missing_thing(1).\n")
                  .ok());
  EXPECT_EQ(FindCode(declared.Analyze(), DiagCode::kUnknownPredicate),
            nullptr);
}

// --- analyze/1 ---------------------------------------------------------------

TEST(AnalyzeBuiltin, ReportsSccsVerdictLintsAndAdvice) {
  Engine engine;
  // Fixture with: a non-stratified component (S001), an unsafe negation
  // (S002), an untabled recursive predicate (A001), and known SCC count.
  ASSERT_TRUE(engine
                  .ConsultString(
                      ":- table win/1.\n"
                      "win(X) :- move(X,Y), tnot win(Y).\n"
                      "move(a,b). move(b,a).\n"
                      "reach(X,Y) :- edge(X,Y).\n"
                      "reach(X,Y) :- reach(X,Z), edge(Z,Y).\n"
                      "edge(1,2).\n"
                      "p :- move(X, Y), \\+ win(Z), reach(X, Y).\n")
                  .ok());
  // Defined predicates: win/1, move/2, reach/2, edge/2, p/0 -> 5 SCCs
  // (each its own component; win and reach are self-recursive).
  AnalysisResult expected = engine.Analyze();
  EXPECT_EQ(expected.sccs.size(), 5u);
  EXPECT_FALSE(expected.stratified());
  EXPECT_NE(FindCode(expected, DiagCode::kUnsafeNegation), nullptr);
  ASSERT_EQ(expected.table_suggestions.size(), 1u);
  EXPECT_EQ(PredName(engine, expected.table_suggestions[0]), "reach/2");

  // The builtin renders the same facts as a term.
  Result<std::vector<Answer>> answers = engine.FindAll("analyze(R)");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  std::string report = answers.value()[0]["R"];
  EXPECT_NE(report.find("sccs"), std::string::npos);
  EXPECT_NE(report.find("5"), std::string::npos);
  EXPECT_NE(report.find("stratified"), std::string::npos);
  EXPECT_NE(report.find("false"), std::string::npos);
  EXPECT_NE(report.find("S001"), std::string::npos);  // verdict diagnostic
  EXPECT_NE(report.find("S002"), std::string::npos);  // safety lint
  EXPECT_NE(report.find("A001"), std::string::npos);  // advisor suggestion
  EXPECT_NE(report.find("reach/2"), std::string::npos);
  EXPECT_NE(report.find("span"), std::string::npos);
}

// --- Formatting --------------------------------------------------------------

TEST(DiagnosticFormat, RendersCodeSeverityPredicateAndSpan) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("q(1).\np(X, Y) :- q(X).\n").ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* l001 = FindCode(result, DiagCode::kSingletonVar);
  ASSERT_NE(l001, nullptr);
  std::string text = FormatDiagnostic(engine.symbols(), *l001);
  EXPECT_NE(text.find("warning L001"), std::string::npos);
  EXPECT_NE(text.find("[p/2]"), std::string::npos);
  EXPECT_NE(text.find(":2:"), std::string::npos);
}

}  // namespace
}  // namespace xsb
