// Differential tests for the WAM tier-up JIT (src/wam/jit.cc): a module run
// with XSB_JIT_THRESHOLD=0 (every predicate compiled to native code on first
// entry) must produce byte-identical answers, in identical order, with
// identical WamStats counters, to the same module run interpreter-only —
// including on calls that violate kCheckMode guards and take the bailout
// into the generic copy. On hosts without native support the JIT must
// detect that, compile nothing, and change nothing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/loader.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace xsb::wam {
namespace {

struct RunOutcome {
  bool ok = false;
  std::vector<std::string> solutions;
  WamStats stats;
  bool jit_active = false;
};

class WamJitTest : public ::testing::Test {
 protected:
  // Consults `program` and runs `goals` in order on one emulator built with
  // the given tier-up threshold, collecting every rendered solution.
  RunOutcome Run(const std::string& program,
                 const std::vector<std::string>& goals, int64_t threshold) {
    RunOutcome out;
    SymbolTable symbols;
    TermStore store(&symbols);
    Program prog(&symbols);
    Loader loader(&store, &prog);
    Status s = loader.ConsultString(program);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (!s.ok()) return out;
    Result<CompiledModule> compiled = CompileModule(&store, prog, {});
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    if (!compiled.ok()) return out;
    EmulatorOptions opts;
    opts.jit_threshold = threshold;
    Emulator emulator(&store, &compiled.value(), opts);
    out.jit_active = emulator.jit_active();
    out.ok = true;
    for (const std::string& goal : goals) {
      Result<Word> g = ParseTermString(&store, prog.ops(), goal);
      EXPECT_TRUE(g.ok()) << g.status().ToString();
      if (!g.ok()) continue;
      size_t trail = store.TrailMark();
      Status st = emulator.Solve(g.value(), [&] {
        out.solutions.push_back(WriteTerm(store, *prog.ops(), g.value()));
        return WamAction::kContinue;
      });
      store.UndoTrail(trail);
      EXPECT_TRUE(st.ok()) << goal << ": " << st.ToString();
      out.ok = out.ok && st.ok();
    }
    out.stats = emulator.stats();
    return out;
  }

  // The differential property: both tiers agree on every solution (bindings
  // rendered byte-for-byte, in derivation order) and on every counter the
  // interpreter maintains.
  void ExpectTiersAgree(const std::string& program,
                        const std::vector<std::string>& goals) {
    RunOutcome interp = Run(program, goals, /*threshold=*/-1);
    RunOutcome jit = Run(program, goals, /*threshold=*/0);
    ASSERT_TRUE(interp.ok);
    ASSERT_TRUE(jit.ok);
    EXPECT_FALSE(interp.jit_active);
    EXPECT_EQ(interp.solutions, jit.solutions);
    EXPECT_EQ(interp.stats.instructions, jit.stats.instructions);
    EXPECT_EQ(interp.stats.choice_points, jit.stats.choice_points);
    EXPECT_EQ(interp.stats.mode_checks, jit.stats.mode_checks);
    EXPECT_EQ(interp.stats.mode_fallbacks, jit.stats.mode_fallbacks);
    EXPECT_EQ(interp.stats.switch_structure_hits,
              jit.stats.switch_structure_hits);
    EXPECT_EQ(interp.stats.switch_miss_linear, jit.stats.switch_miss_linear);
    EXPECT_EQ(interp.stats.jit_compiled_preds, 0u);
    EXPECT_EQ(interp.stats.jit_entries, 0u);
    if (Jit::HostSupported()) {
      EXPECT_TRUE(jit.jit_active);
      EXPECT_GT(jit.stats.jit_compiled_preds, 0u);
      EXPECT_GT(jit.stats.jit_entries, 0u);
    } else {
      // Unsupported host: the zero threshold must change nothing at all.
      EXPECT_EQ(jit.stats.jit_compiled_preds, 0u);
      EXPECT_EQ(jit.stats.jit_entries, 0u);
      EXPECT_EQ(jit.stats.jit_bailouts, 0u);
    }
  }
};

TEST_F(WamJitTest, FactsAndBacktracking) {
  ExpectTiersAgree("e(1,2). e(2,3). e(3,4). e(2,5).\n",
                   {"e(X,Y)", "e(2,X)", "e(X,5)", "e(9,X)"});
}

TEST_F(WamJitTest, RecursionOverChains) {
  ExpectTiersAgree(
      "edge(a,b). edge(b,c). edge(c,d). edge(d,e).\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- edge(X,Y), path(Y,Z).\n",
      {"path(a,X)", "path(X,e)", "path(X,Y)", "path(e,X)"});
}

TEST_F(WamJitTest, StructuresReadAndWriteModes) {
  ExpectTiersAgree(
      "shape(point(0,0)). shape(line(point(0,0), point(3,4))).\n"
      "wrap(X, box(X, X)).\n",
      {"shape(S)", "shape(line(A,B))", "shape(point(X,Y))", "wrap(7, B)",
       "wrap(W, box(a, a))"});
}

TEST_F(WamJitTest, ListRecursionBothDirections) {
  ExpectTiersAgree(
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n",
      {"app([1,2,3], [4,5], X)", "app(X, Y, [1,2,3,4])", "app([a], X, [a,b])"});
}

TEST_F(WamJitTest, StructureSwitchDispatchesIdentically) {
  // Mixed constant/structure clause sets share the two-level dispatch;
  // both tiers must agree on answers AND on the new indexing counters
  // (hits through the functor table and the './2' fast path, misses onto
  // linear chains), byte for byte.
  std::string program =
      "g(nil, 0).\n"
      "g(f(X), X).\n"
      "g(h(X, Y), p(X, Y)).\n"
      "g([H|_], H).\n"
      "g(f(9), ninety).\n";
  ExpectTiersAgree(program,
                   {"g(nil, V)", "g(f(7), V)", "g(h(1,2), V)", "g([a,b], V)",
                    "g(f(9), V)", "g(nosuch(1), V)", "g(99, V)", "g(X, V)"});
  RunOutcome jit = Run(program, {"g(f(7), V)", "g([a], V)"}, /*threshold=*/0);
  ASSERT_TRUE(jit.ok);
  EXPECT_EQ(jit.stats.switch_structure_hits, 2u);
  EXPECT_EQ(jit.stats.switch_miss_linear, 0u);
}

TEST_F(WamJitTest, NrevCountersAgreeWithChoicePointsDeleted) {
  // The ISSUE 10 acceptance shape: nrev on both tiers, byte-identical
  // stats, and the structure switch deleting every shallow choice point.
  std::string list = "[";
  for (int i = 1; i <= 30; ++i) list += (i > 1 ? "," : "") + std::to_string(i);
  std::string program =
      "app([], L, L).\n"
      "app([H|T], L, [H|R]) :- app(T, L, R).\n"
      "nrev([], []).\n"
      "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n";
  ExpectTiersAgree(program, {"nrev(" + list + "], R)"});
  RunOutcome jit = Run(program, {"nrev(" + list + "], R)"}, /*threshold=*/0);
  ASSERT_TRUE(jit.ok);
  EXPECT_LE(jit.stats.choice_points, 40u);
  EXPECT_GT(jit.stats.switch_structure_hits, 0u);
  EXPECT_EQ(jit.stats.switch_miss_linear, 0u);
}

TEST_F(WamJitTest, ArithmeticBuiltinsBailOutCorrectly) {
  // Builtins are outside the native subset: every one is a bailout to the
  // interpreter at its exact pc, and results must still agree.
  ExpectTiersAgree(
      "len([], 0).\n"
      "len([_|T], N) :- len(T, M), N is M + 1.\n"
      "big(X) :- X > 10.\n",
      {"len([a,b,c,d], N)", "len([], 0)", "big(11)", "big(3)"});
}

TEST_F(WamJitTest, ModeGuardViolationsFallBackIdentically) {
  // lookup/2 gets a ground-argument guard from the analyzer; calling it with
  // an unbound first argument must fail the native guard, jump to the
  // generic copy, and count exactly like the interpreter.
  std::string program =
      "lookup(a, 1). lookup(b, 2). lookup(c, 3).\n"
      "use(V) :- lookup(a, V).\n";
  ExpectTiersAgree(program, {"lookup(a, X)", "lookup(Z, 2)", "use(V)"});
  RunOutcome jit = Run(program, {"lookup(Z, 2)"}, /*threshold=*/0);
  ASSERT_TRUE(jit.ok);
  EXPECT_GT(jit.stats.mode_fallbacks, 0u);
}

TEST_F(WamJitTest, PermanentVariablesAcrossCalls) {
  ExpectTiersAgree(
      "p(1). p(2). p(3). q(2). q(3). r(3).\n"
      "conj(X) :- p(X), q(X), r(X).\n"
      "pair(X, Y) :- p(X), q(Y).\n",
      {"conj(X)", "pair(X,Y)"});
}

TEST_F(WamJitTest, TierUpThresholdCountsEntries) {
  if (!Jit::HostSupported()) GTEST_SKIP() << "no native tier on this host";
  // With a threshold of 3 the first three calls interpret; the fourth tiers
  // up. Solutions agree throughout the transition.
  std::string program = "f(1). f(2).\n";
  RunOutcome warm = Run(program, {"f(X)", "f(X)", "f(X)"}, /*threshold=*/3);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.stats.jit_compiled_preds, 0u);
  RunOutcome hot =
      Run(program, {"f(X)", "f(X)", "f(X)", "f(X)", "f(X)"}, /*threshold=*/3);
  ASSERT_TRUE(hot.ok);
  EXPECT_EQ(hot.stats.jit_compiled_preds, 1u);
  EXPECT_EQ(hot.solutions,
            std::vector<std::string>({"f(1)", "f(2)", "f(1)", "f(2)", "f(1)",
                                      "f(2)", "f(1)", "f(2)", "f(1)",
                                      "f(2)"}));
}

TEST_F(WamJitTest, NegativeThresholdDisablesJit) {
  RunOutcome out = Run("f(1).\n", {"f(X)"}, /*threshold=*/-1);
  ASSERT_TRUE(out.ok);
  EXPECT_FALSE(out.jit_active);
  EXPECT_EQ(out.stats.jit_compiled_preds, 0u);
  EXPECT_EQ(out.stats.jit_entries, 0u);
}

TEST_F(WamJitTest, WamStatsBuiltinReportsJitCounters) {
  // wam_stats/2 compiled as a WAM builtin: reads this emulator's counters,
  // including the JIT tier's, as a name-Value list.
  std::string program =
      "f(1). f(2).\n"
      "report(S) :- f(_), wam_stats(all, S).\n";
  RunOutcome out = Run(program, {"report(S)"}, /*threshold=*/0);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.solutions.size(), 2u);
  EXPECT_NE(out.solutions[0].find("instructions -"), std::string::npos);
  EXPECT_NE(out.solutions[0].find("jit_compiled_preds -"), std::string::npos);
  EXPECT_NE(out.solutions[0].find("jit_bailouts -"), std::string::npos);
}

}  // namespace
}  // namespace xsb::wam
