// Concurrency tests for the shared-table serving layer: QueryService
// correctness under parallel load, epoch-protected retirement while readers
// enumerate, the two-instances-same-process regression, and unit stress for
// the lock-free primitives (EpochManager, InternTable, SymbolTable). All
// tests also run under the `tsan` preset (scripts/check.sh).

#include <algorithm>
#include <atomic>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/query_service.h"
#include "tabling/epoch.h"
#include "term/cell.h"
#include "term/intern.h"
#include "term/symbols.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

constexpr const char* kPathProgram =
    ":- table path/2.\n"
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

std::string ChainEdges(int n) {
  std::ostringstream out;
  for (int i = 1; i < n; ++i) {
    out << "edge(" << i << "," << i + 1 << ").\n";
  }
  return out.str();
}

std::vector<std::string> SortedAnswers(
    const Result<std::vector<Answer>>& result) {
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.status().ToString());
  std::vector<std::string> out;
  if (!result.ok()) return out;
  for (const Answer& answer : result.value()) {
    out.push_back(answer.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- Satellite 1: no hidden shared state between engine instances ----------

TEST(TwoEnginesTest, InterleavedQueriesAgree) {
  Engine a;
  Engine b;
  std::string program = std::string(kPathProgram) + ChainEdges(30);
  ASSERT_TRUE(a.ConsultString(program).ok());
  ASSERT_TRUE(b.ConsultString(program).ok());
  // Interleave queries so each engine's tables grow while the other serves;
  // any shared mutable scratch between instances corrupts one of them.
  for (int i = 1; i <= 10; ++i) {
    std::string goal = "path(" + std::to_string(i) + ", X)";
    std::vector<std::string> from_a = SortedAnswers(a.FindAll(goal));
    std::vector<std::string> from_b = SortedAnswers(b.FindAll(goal));
    EXPECT_EQ(from_a, from_b) << goal;
    EXPECT_EQ(from_a.size(), static_cast<size_t>(30 - i)) << goal;
  }
}

TEST(TwoEnginesTest, ParallelEnginesAgree) {
  // Fully independent engines evaluated from two threads: exercises every
  // function-local static and global reachable from Machine/Evaluator.
  std::string program = std::string(kPathProgram) + ChainEdges(40);
  std::vector<size_t> counts(2, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Engine engine;
      ASSERT_TRUE(engine.ConsultString(program).ok());
      Result<size_t> count = engine.Count("path(X, Y)");
      ASSERT_TRUE(count.ok());
      counts[t] = count.value();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counts[0], 40u * 39u / 2u);
  EXPECT_EQ(counts[0], counts[1]);
}

// --- Lock-free primitive stress --------------------------------------------

TEST(EpochManagerTest, RetirementWaitsForActiveReaders) {
  EpochManager epochs;
  // No slots active: everything reclaims immediately (engine fast path).
  EXPECT_TRUE(epochs.SafeToReclaim(epochs.Retire()));

  int reader = epochs.AcquireSlot();
  ASSERT_GE(reader, 0);
  epochs.Enter(reader);
  uint64_t stamp = epochs.Retire();
  // The reader entered before the retirement, so it may still hold a
  // reference to the retired object.
  EXPECT_FALSE(epochs.SafeToReclaim(stamp));
  epochs.Exit(reader);
  EXPECT_TRUE(epochs.SafeToReclaim(stamp));

  // A reader that enters *after* the retirement does not block it.
  epochs.Enter(reader);
  EXPECT_TRUE(epochs.SafeToReclaim(stamp));
  epochs.Exit(reader);
  epochs.ReleaseSlot(reader);
}

TEST(EpochManagerTest, ConcurrentEnterExitRetire) {
  EpochManager epochs;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      int slot = epochs.AcquireSlot();
      ASSERT_GE(slot, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        EpochGuard guard(&epochs, slot);
        // Entered readers always announce an epoch <= the next retirement.
        EXPECT_LE(epochs.MinActive(), epochs.Retire());
      }
      epochs.ReleaseSlot(slot);
    });
  }
  for (int i = 0; i < 2000; ++i) epochs.Retire();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) thread.join();
  // All slots idle again: every stamp is reclaimable.
  EXPECT_TRUE(epochs.SafeToReclaim(epochs.current()));
}

TEST(SymbolTableTest, ConcurrentInterningDeduplicates) {
  SymbolTable symbols;
  constexpr int kThreads = 4;
  constexpr int kNames = 200;
  std::vector<std::vector<AtomId>> ids(kThreads,
                                       std::vector<AtomId>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        // Every thread interns the same names, racing on first use.
        ids[t][i] = symbols.InternAtom("atom_" + std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kNames; ++i) {
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t][i], ids[0][i]);
    EXPECT_EQ(symbols.AtomName(ids[0][i]), "atom_" + std::to_string(i));
  }
}

TEST(InternTableTest, ConcurrentInterningDeduplicates) {
  SymbolTable symbols;
  InternTable interns(&symbols);
  AtomId f = symbols.InternAtom("f");
  FunctorId functor = symbols.InternFunctor(f, 2);
  constexpr int kThreads = 4;
  constexpr int kTerms = 300;  // enough to force dedup-table growth
  std::vector<std::vector<Word>> tokens(kThreads,
                                        std::vector<Word>(kTerms));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTerms; ++i) {
        Word args[2] = {MakeCell(Tag::kInt, static_cast<uint64_t>(i)),
                        MakeCell(Tag::kInt, static_cast<uint64_t>(i + 1))};
        tokens[t][i] = interns.InternNode(functor, args, 2);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kTerms; ++i) {
    Word args[2] = {MakeCell(Tag::kInt, static_cast<uint64_t>(i)),
                    MakeCell(Tag::kInt, static_cast<uint64_t>(i + 1))};
    // Hash-consing survived the races: one token per distinct term, and
    // the lock-free probe finds it.
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(tokens[t][i], tokens[0][i]);
    EXPECT_EQ(interns.FindNode(functor, args, 2), tokens[0][i]);
  }
  EXPECT_EQ(interns.num_terms(), static_cast<size_t>(kTerms));
}

// --- QueryService ----------------------------------------------------------

TEST(QueryServiceTest, WarmTableServesAllWorkers) {
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(
      service.Consult(std::string(kPathProgram) + ChainEdges(60)).ok());
  // Warm the table once...
  std::vector<std::string> expected =
      SortedAnswers(service.Query("path(1, X)"));
  ASSERT_EQ(expected.size(), 59u);
  // ...then hit it concurrently from every worker.
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(service.Submit("path(1, X)"));
  for (auto& future : futures) {
    EXPECT_EQ(SortedAnswers(future.get()), expected);
  }
  QueryService::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, 33u);
  EXPECT_EQ(stats.per_worker.size(), 4u);
  // Every repeat was served lock-free off the published table.
  EXPECT_GE(stats.shared_table_hits, 32u);
}

TEST(QueryServiceTest, ColdConcurrentVariantComputedOnce) {
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(
      service.Consult(std::string(kPathProgram) + ChainEdges(80)).ok());
  // All workers race on the same cold variant: the first caller computes,
  // the rest either park on the completion condvar or serve warm.
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.Submit("path(1, X)"));
  std::vector<std::string> expected = SortedAnswers(futures[0].get());
  EXPECT_EQ(expected.size(), 79u);
  for (size_t i = 1; i < futures.size(); ++i) {
    EXPECT_EQ(SortedAnswers(futures[i].get()), expected);
  }
  // Exactly one evaluation happened: one subgoal, created once.
  EXPECT_EQ(service.tables().stats().subgoals_created.load(), 1u);
}

TEST(QueryServiceTest, DistinctVariantsEvaluateConcurrently) {
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(
      service.Consult(std::string(kPathProgram) + ChainEdges(40)).ok());
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int i = 1; i <= 20; ++i) {
    futures.push_back(service.Submit("path(" + std::to_string(i) + ", X)"));
  }
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(SortedAnswers(futures[i - 1].get()).size(),
              static_cast<size_t>(40 - i))
        << "path(" << i << ", X)";
  }
}

TEST(QueryServiceTest, AbolishDuringConcurrentEnumeration) {
  // N workers enumerate a completed table in a loop while abolish queries
  // retire it from another worker: epoch-deferred reclamation must keep
  // every open snapshot readable, and re-evaluation after each abolish must
  // rebuild the exact same answers.
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(
      service.Consult(std::string(kPathProgram) + ChainEdges(50)).ok());
  std::vector<std::string> expected =
      SortedAnswers(service.Query("path(1, X)"));
  ASSERT_EQ(expected.size(), 49u);

  std::vector<std::future<Result<std::vector<Answer>>>> reads;
  std::vector<std::future<Result<std::vector<Answer>>>> abolishes;
  for (int round = 0; round < 12; ++round) {
    for (int r = 0; r < 3; ++r) reads.push_back(service.Submit("path(1, X)"));
    abolishes.push_back(service.Submit("abolish_table_call(path(1, X))"));
  }
  for (auto& future : reads) {
    EXPECT_EQ(SortedAnswers(future.get()), expected);
  }
  for (auto& future : abolishes) {
    Result<std::vector<Answer>> result = future.get();
    EXPECT_TRUE(result.ok());
  }
  // Quiesce (pause-the-world releases all retired snapshots), then check
  // that the abolishes really exercised retire + reclaim.
  ASSERT_TRUE(service.Update("true").ok());
  QueryService::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.epochs_retired, 0u);
  EXPECT_EQ(service.tables().num_retired_answers(), 0u);
}

TEST(QueryServiceTest, IncrementalRetractDuringServing) {
  QueryService service({.num_workers = 2});
  ASSERT_TRUE(service
                  .Consult(":- table path/2.\n"
                           ":- incremental(edge/2).\n"
                           "path(X,Y) :- edge(X,Y).\n"
                           "path(X,Y) :- path(X,Z), edge(Z,Y).\n" +
                           ChainEdges(20))
                  .ok());
  ASSERT_EQ(SortedAnswers(service.Query("path(1, X)")).size(), 19u);
  // Retract the tail edge: pause-the-world update, incremental
  // invalidation through the shared space, lazy re-evaluation on the next
  // call — interleaved with concurrent serving before and after.
  ASSERT_TRUE(service.Update("retract(edge(19, 20))").ok());
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.Submit("path(1, X)"));
  for (auto& future : futures) {
    EXPECT_EQ(SortedAnswers(future.get()).size(), 18u);
  }
  ASSERT_TRUE(service.Update("assert(edge(19, 20))").ok());
  EXPECT_EQ(SortedAnswers(service.Query("path(1, X)")).size(), 19u);
  EXPECT_GT(service.tables().stats().tables_reevaluated.load(), 0u);
}

TEST(QueryServiceTest, StatsBuiltinExposesServiceCounters) {
  // table_stats/2 reports the shared-serving counters (satellite: counter
  // exposure); through the service the warm hits show up.
  QueryService service({.num_workers = 2});
  ASSERT_TRUE(
      service.Consult(std::string(kPathProgram) + ChainEdges(10)).ok());
  ASSERT_EQ(SortedAnswers(service.Query("path(1, X)")).size(), 9u);
  ASSERT_EQ(SortedAnswers(service.Query("path(1, X)")).size(), 9u);
  Result<std::vector<Answer>> stats =
      service.Query("table_stats(all, Stats)");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().size(), 1u);
  std::string rendered = stats.value()[0].ToString();
  EXPECT_NE(rendered.find("shared_table_hits"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("waits_on_inprogress"), std::string::npos);
  EXPECT_NE(rendered.find("epochs_retired"), std::string::npos);
  // Warm path only: the coarse-fallback counter must be present and zero.
  EXPECT_NE(rendered.find("coarse_fallbacks - 0"), std::string::npos)
      << rendered;
}

// --- Multi-thread vs single-thread differential ----------------------------

class ConcurrentDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentDifferential, AgreesWithSingleThread) {
  std::mt19937 rng(static_cast<uint32_t>(GetParam()));
  int nodes = 8 + static_cast<int>(rng() % 8);
  int edges = nodes + static_cast<int>(rng() % (2 * nodes));
  std::ostringstream program;
  program << kPathProgram;
  for (int i = 0; i < edges; ++i) {
    program << "edge(" << 1 + rng() % nodes << "," << 1 + rng() % nodes
            << ").\n";
  }
  std::string text = program.str();

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(text).ok());
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(service.Consult(text).ok());

  // A mix of open, half-bound and ground queries, all in flight at once.
  std::vector<std::string> goals;
  for (int i = 1; i <= nodes; ++i) {
    goals.push_back("path(" + std::to_string(i) + ", X)");
    goals.push_back("path(X, " + std::to_string(i) + ")");
  }
  goals.push_back("path(X, Y)");
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (const std::string& goal : goals) futures.push_back(service.Submit(goal));
  for (size_t i = 0; i < goals.size(); ++i) {
    std::vector<std::string> concurrent = SortedAnswers(futures[i].get());
    std::vector<std::string> reference =
        SortedAnswers(engine.FindAll(goals[i]));
    EXPECT_EQ(concurrent, reference) << goals[i] << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentDifferential,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace xsb
