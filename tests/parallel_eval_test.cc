// Schedule-randomizing stress tests for parallel evaluation of independent
// tabled subgoals (the shard-ownership protocol replacing the global eval
// lock). A seeded SchedulePerturb hook injects random yields/sleeps at every
// lock acquisition / wait / publication point inside the table space, so one
// pass over the suite explores many interleavings; every answer set is
// checked against a single-threaded Engine oracle. Worker count comes from
// XSB_TEST_WORKERS (the CI TSan matrix runs 2/4/8); on failure the active
// seed plus a ring buffer of recent perturbation points is written to
// parallel_eval_trace.txt for upload as a CI artifact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/query_service.h"
#include "tabling/table_space.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

int TestWorkers() {
  const char* env = std::getenv("XSB_TEST_WORKERS");
  if (env == nullptr) return 4;
  int n = std::atoi(env);
  return n >= 1 ? n : 4;
}

std::vector<std::string> SortedAnswers(
    const Result<std::vector<Answer>>& result) {
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.status().ToString());
  std::vector<std::string> out;
  if (!result.ok()) return out;
  for (const Answer& answer : result.value()) {
    out.push_back(answer.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- SchedulePerturb hook ---------------------------------------------------

// Seeded random yields/sleeps, plus a ring buffer of the points each thread
// passed (the schedule trace uploaded on CI failure).
struct PerturbState {
  std::atomic<bool> on{false};
  std::atomic<uint32_t> seed{0};
  std::atomic<uint64_t> hits{0};
  std::mutex trace_mutex;
  std::vector<std::string> trace;  // bounded ring, newest last
};

PerturbState& Perturb() {
  static PerturbState state;
  return state;
}

void PerturbHook(const char* point) {
  PerturbState& state = Perturb();
  if (!state.on.load(std::memory_order_acquire)) return;
  state.hits.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state.trace_mutex);
    if (state.trace.size() >= 4096) {
      state.trace.erase(state.trace.begin(), state.trace.begin() + 2048);
    }
    std::ostringstream line;
    line << std::this_thread::get_id() << " " << point;
    state.trace.push_back(line.str());
  }
  thread_local std::mt19937 rng(
      state.seed.load(std::memory_order_relaxed) ^
      static_cast<uint32_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  switch (rng() % 8) {
    case 0:
    case 1:
      std::this_thread::yield();
      break;
    case 2:
      std::this_thread::sleep_for(std::chrono::microseconds(rng() % 50));
      break;
    case 3:
      std::this_thread::sleep_for(std::chrono::microseconds(rng() % 300));
      break;
    default:
      break;  // run through
  }
}

// Installs the randomized hook for one test scope; on destruction after a
// failure, dumps the seed and the recent schedule to the trace artifact.
class PerturbScope {
 public:
  explicit PerturbScope(uint32_t seed) {
    PerturbState& state = Perturb();
    {
      std::lock_guard<std::mutex> lock(state.trace_mutex);
      state.trace.clear();
    }
    state.seed.store(seed, std::memory_order_relaxed);
    state.on.store(true, std::memory_order_release);
    TableSpace::SetSchedulePerturb(&PerturbHook);
  }
  ~PerturbScope() {
    TableSpace::SetSchedulePerturb(nullptr);
    PerturbState& state = Perturb();
    state.on.store(false, std::memory_order_release);
    if (testing::Test::HasFailure()) {
      std::ofstream out("parallel_eval_trace.txt", std::ios::app);
      out << "=== " << testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()
          << " seed=" << state.seed.load() << " workers=" << TestWorkers()
          << " ===\n";
      std::lock_guard<std::mutex> lock(state.trace_mutex);
      for (const std::string& line : state.trace) out << line << "\n";
    }
  }
  PerturbScope(const PerturbScope&) = delete;
  PerturbScope& operator=(const PerturbScope&) = delete;
};

// --- Generated programs -----------------------------------------------------

// `families` independent transitive-closure families path_i/edge_i: disjoint
// call-graph SCCs, so the analyzer gives them (mod collisions) disjoint
// shard reach masks and cold queries over different families evaluate
// concurrently. With `extras` the edge sets get a few random edges per seed
// (the stress suites); without, the chain is deterministic so tests can
// assert exact answer counts.
std::string IndependentFamilies(int families, int chain, uint32_t seed,
                                bool extras = true) {
  std::mt19937 rng(seed);
  std::ostringstream out;
  for (int f = 0; f < families; ++f) {
    out << ":- table path" << f << "/2.\n";
    out << "path" << f << "(X,Y) :- edge" << f << "(X,Y).\n";
    out << "path" << f << "(X,Y) :- path" << f << "(X,Z), edge" << f
        << "(Z,Y).\n";
    for (int i = 1; i < chain; ++i) {
      out << "edge" << f << "(" << i << "," << i + 1 << ").\n";
    }
    if (!extras) continue;
    // A few random extra edges so the families differ per seed.
    for (int i = 0; i < 3; ++i) {
      out << "edge" << f << "(" << 1 + rng() % chain << ","
          << 1 + rng() % chain << ").\n";
    }
  }
  return out.str();
}

// Known-dependent pairs on top of the independent families: bridge/2 joins
// two families' closures, and a mutually recursive pair spans another two.
std::string DependentToppings(int families) {
  std::ostringstream out;
  out << ":- table bridge/2.\n"
      << "bridge(X,Y) :- path0(X,Z), path1(Z,Y).\n"
      << ":- table even/2.\n:- table odd/2.\n"
      << "even(X,X) :- path2(X,_).\n"
      << "even(X,Y) :- odd(X,Z), edge3(Z,Y).\n"
      << "odd(X,Y) :- even(X,Z), edge2(Z,Y).\n";
  (void)families;
  return out.str();
}

std::vector<std::string> StressGoals(int families, bool dependent,
                                     uint32_t seed) {
  std::mt19937 rng(seed ^ 0x9e3779b9u);
  std::vector<std::string> goals;
  for (int f = 0; f < families; ++f) {
    goals.push_back("path" + std::to_string(f) + "(1, X)");
    goals.push_back("path" + std::to_string(f) + "(" +
                    std::to_string(1 + rng() % 5) + ", X)");
  }
  if (dependent) {
    goals.push_back("bridge(1, X)");
    goals.push_back("even(1, X)");
    goals.push_back("odd(1, X)");
    goals.push_back("bridge(2, X)");
  }
  std::shuffle(goals.begin(), goals.end(), rng);
  return goals;
}

// Runs `goals` cold and overlapping on a fresh perturbed QueryService and
// checks every answer set against the single-threaded oracle.
void RunStress(const std::string& program,
               const std::vector<std::string>& goals, uint32_t seed) {
  // Oracle first, before the hook slows everything down.
  Engine oracle;
  ASSERT_TRUE(oracle.ConsultString(program).ok());
  std::vector<std::vector<std::string>> expected;
  expected.reserve(goals.size());
  for (const std::string& goal : goals) {
    expected.push_back(SortedAnswers(oracle.FindAll(goal)));
  }

  QueryService service({.num_workers = TestWorkers()});
  ASSERT_TRUE(service.Consult(program).ok());
  PerturbScope perturb(seed);
  // Two waves: the first is all-cold and overlapping, the second re-issues
  // every goal (warm serves race the stragglers of the first wave).
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int wave = 0; wave < 2; ++wave) {
    for (const std::string& goal : goals) futures.push_back(service.Submit(goal));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(SortedAnswers(futures[i].get()), expected[i % goals.size()])
        << "goal " << goals[i % goals.size()] << " seed " << seed;
  }
  EXPECT_GT(Perturb().hits.load(), 0u);
}

class ParallelEvalStress : public testing::TestWithParam<uint32_t> {};

TEST_P(ParallelEvalStress, IndependentSubgoalsMatchOracle) {
  uint32_t seed = GetParam();
  std::string program = IndependentFamilies(6, 24, seed);
  RunStress(program, StressGoals(6, /*dependent=*/false, seed), seed);
}

TEST_P(ParallelEvalStress, DependentSubgoalsMatchOracle) {
  uint32_t seed = GetParam();
  std::string program =
      IndependentFamilies(4, 16, seed) + DependentToppings(4);
  RunStress(program, StressGoals(4, /*dependent=*/true, seed), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEvalStress, testing::Range(0u, 6u));

// --- Concurrency proof ------------------------------------------------------

// Two cold queries over shard-disjoint families must *overlap*: each worker
// blocks inside the post-acquisition hook until both hold their shards at
// the same time. Under the old global eval lock the second acquisition could
// never happen while the first was parked, so this test fails by timeout
// flag. Deterministic on a single core — the block point is a condition
// wait, not a busy race.
std::atomic<int> g_inside{0};
std::atomic<bool> g_overlap_seen{false};

void OverlapHook(const char* point) {
  if (std::string_view(point) != "shards.acquired") return;
  g_inside.fetch_add(1);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (g_inside.load() >= 2) {
      g_overlap_seen.store(true);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ParallelEvalTest, IndependentColdQueriesOverlap) {
  if (TestWorkers() < 2) GTEST_SKIP() << "needs >= 2 workers";
  QueryService service({.num_workers = TestWorkers()});
  ASSERT_TRUE(
      service.Consult(IndependentFamilies(2, 20, 7, /*extras=*/false)).ok());
  SymbolTable* symbols = service.program().symbols();
  const Predicate* p0 = service.program().Lookup(
      symbols->InternFunctor(symbols->InternAtom("path0"), 2));
  const Predicate* p1 = service.program().Lookup(
      symbols->InternFunctor(symbols->InternAtom("path1"), 2));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  // The analyzer must have given the two families disjoint reach masks —
  // that is the property that makes them run concurrently.
  ASSERT_NE(p0->eval_reach_mask(), 0u);
  ASSERT_NE(p1->eval_reach_mask(), 0u);
  ASSERT_EQ(p0->eval_reach_mask() & p1->eval_reach_mask(), 0u);

  g_inside.store(0);
  g_overlap_seen.store(false);
  TableSpace::SetSchedulePerturb(&OverlapHook);
  auto a = service.Submit("path0(1, X)");
  auto b = service.Submit("path1(1, X)");
  EXPECT_EQ(SortedAnswers(a.get()).size(), 19u);
  EXPECT_EQ(SortedAnswers(b.get()).size(), 19u);
  TableSpace::SetSchedulePerturb(nullptr);
  EXPECT_TRUE(g_overlap_seen.load())
      << "two shard-disjoint cold evaluations never overlapped";
  EXPECT_GT(service.Stats().parallel_batches, 0u);
  EXPECT_EQ(service.Stats().coarse_fallbacks, 0u);
}

// --- Deadlock watchdog / coarse fallback ------------------------------------

// A dependency asserted *after* analysis makes path0's reach mask stale: it
// does not cover path1's shard. With path1's shard held externally, a cold
// path0 evaluation must escalate, lose, unwind, and restart under the
// all-shards coarse lock (counted in coarse_fallbacks) — and complete once
// the shard frees, rather than deadlocking.
TEST(ParallelEvalTest, StaleMaskEngagesCoarseFallbackNotDeadlock) {
  QueryService service({.num_workers = TestWorkers()});
  ASSERT_TRUE(
      service.Consult(IndependentFamilies(2, 10, 11, /*extras=*/false)).ok());
  SymbolTable* symbols = service.program().symbols();
  const Predicate* p0 = service.program().Lookup(
      symbols->InternFunctor(symbols->InternAtom("path0"), 2));
  const Predicate* p1 = service.program().Lookup(
      symbols->InternFunctor(symbols->InternAtom("path1"), 2));
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  ASSERT_EQ(p0->eval_reach_mask() & p1->eval_reach_mask(), 0u);

  // The cross-family rule the analyzer never saw.
  ASSERT_TRUE(service.Update("assertz((path0(X,Y) :- path1(X,Y)))").ok());
  ASSERT_EQ(p0->eval_reach_mask() & EvalShardBit(p1->eval_shard()), 0u)
      << "mask should be stale (that is the point of the test)";

  // Hold path1's shard so the mid-batch escalation inside the path0
  // evaluation must fail.
  ShardMask held = EvalShardBit(p1->eval_shard());
  service.tables().AcquireShards(held);
  auto future = service.Submit("path0(1, X)");
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.Stats().coarse_fallbacks == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(service.Stats().coarse_fallbacks, 1u)
      << "stale-mask evaluation never fell back to coarse locking";
  // The coarse restart is now parked on the full mask; freeing the shard
  // must let it complete within the watchdog bound.
  service.tables().ReleaseShards(held);
  EXPECT_EQ(SortedAnswers(future.get()).size(), 9u);

  // The counter also surfaces through table_stats/2.
  auto stats = service.Query("table_stats(all, S)");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().size(), 1u);
  EXPECT_NE(stats.value()[0].ToString().find("coarse_fallbacks"),
            std::string::npos);
}

// A fully cyclic cross-shard program (both directions asserted after
// analysis) evaluated cold from many workers at once, with the randomized
// hook on: every schedule must terminate — contended escalations unwind to
// the coarse path instead of hold-and-waiting — and agree with the oracle.
TEST(ParallelEvalTest, CyclicCrossShardProgramCompletes) {
  std::string base = IndependentFamilies(2, 12, 13, /*extras=*/false);
  std::string cross =
      "assertz((path0(X,Y) :- path1(X,Y))), "
      "assertz((path1(X,Y) :- path0(X,Y)))";
  Engine oracle;
  ASSERT_TRUE(oracle.ConsultString(base).ok());
  ASSERT_TRUE(oracle.Count(cross).ok());
  std::vector<std::string> expected0 =
      SortedAnswers(oracle.FindAll("path0(1, X)"));
  std::vector<std::string> expected1 =
      SortedAnswers(oracle.FindAll("path1(1, X)"));

  QueryService service({.num_workers = TestWorkers()});
  ASSERT_TRUE(service.Consult(base).ok());
  ASSERT_TRUE(service.Update(cross).ok());
  PerturbScope perturb(13);
  std::vector<std::future<Result<std::vector<Answer>>>> futures;
  for (int round = 0; round < 4; ++round) {
    futures.push_back(service.Submit("path0(1, X)"));
    futures.push_back(service.Submit("path1(1, X)"));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(SortedAnswers(futures[i].get()),
              i % 2 == 0 ? expected0 : expected1);
  }
  // waits_on_inprogress / coarse_fallbacks are schedule-dependent here; the
  // assertion is termination + soundness, which future.get() already is.
}

// The published reach masks really partition independent families: every
// family owns its own shard bit and no two families' masks intersect (up to
// the 16-shard modulus, which this small program cannot collide).
TEST(ParallelEvalTest, AnalyzerPublishesDisjointReachMasks) {
  QueryService service({.num_workers = 1});
  ASSERT_TRUE(service.Consult(IndependentFamilies(4, 6, 3)).ok());
  SymbolTable* symbols = service.program().symbols();
  std::vector<ShardMask> masks;
  for (int f = 0; f < 4; ++f) {
    const Predicate* pred = service.program().Lookup(symbols->InternFunctor(
        symbols->InternAtom("path" + std::to_string(f)), 2));
    ASSERT_NE(pred, nullptr);
    ASSERT_GE(pred->eval_shard(), 0);
    ASSERT_NE(pred->eval_reach_mask() & EvalShardBit(pred->eval_shard()), 0u);
    masks.push_back(pred->eval_reach_mask());
  }
  for (size_t i = 0; i < masks.size(); ++i) {
    for (size_t j = i + 1; j < masks.size(); ++j) {
      EXPECT_EQ(masks[i] & masks[j], 0u) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace xsb
