#include <gtest/gtest.h>

#include "db/program.h"
#include "parser/reader.h"
#include "term/store.h"

namespace xsb {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : store_(&symbols_), program_(&symbols_) {}

  void Load(const std::string& text) {
    Reader reader(&store_, program_.ops(), text, program_.hilog_atoms());
    while (!reader.AtEof()) {
      Result<Word> r = reader.ReadClause();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_TRUE(program_.AddClauseTerm(store_, r.value()).ok());
    }
  }

  Word Parse(const std::string& text) {
    Result<Word> r = ParseTermString(&store_, program_.ops(), text);
    EXPECT_TRUE(r.ok());
    return r.value();
  }

  Predicate* Pred(const char* name, int arity) {
    return program_.Lookup(
        symbols_.InternFunctor(symbols_.InternAtom(name), arity));
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
};

TEST_F(IndexTest, FirstArgHashNarrowsCandidates) {
  Load("edge(1,2). edge(1,3). edge(2,3). edge(3,4).");
  Predicate* p = Pred("edge", 2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->Candidates(store_, Parse("edge(1,X)")).size(), 2u);
  EXPECT_EQ(p->Candidates(store_, Parse("edge(3,X)")).size(), 1u);
  EXPECT_EQ(p->Candidates(store_, Parse("edge(9,X)")).size(), 0u);
  EXPECT_EQ(p->Candidates(store_, Parse("edge(X,Y)")).size(), 4u);
}

TEST_F(IndexTest, FirstArgHashKeysOnOuterSymbolOnly) {
  Load("p(f(a)). p(f(b)). p(g(a)). p(c).");
  Predicate* p = Pred("p", 1);
  // f(a) and f(b) share the outer symbol f/1.
  EXPECT_EQ(p->Candidates(store_, Parse("p(f(x))")).size(), 2u);
  EXPECT_EQ(p->Candidates(store_, Parse("p(g(q))")).size(), 1u);
  EXPECT_EQ(p->Candidates(store_, Parse("p(c)")).size(), 1u);
}

TEST_F(IndexTest, VarHeadClausesAppearInEveryBucket) {
  Load("q(1,a). q(X,b). q(2,c).");
  Predicate* p = Pred("q", 2);
  // Key 1 matches clause 0 and the var clause 1.
  EXPECT_EQ(p->Candidates(store_, Parse("q(1,Z)")).size(), 2u);
  // Key 2 matches var clause and clause 2; order must be source order.
  auto c = p->Candidates(store_, Parse("q(2,Z)"));
  ASSERT_EQ(c.size(), 2u);
  EXPECT_LT(c[0], c[1]);
  // Unseen key still matches the var clause.
  EXPECT_EQ(p->Candidates(store_, Parse("q(99,Z)")).size(), 1u);
}

TEST_F(IndexTest, MultiFieldIndexDeclaration) {
  Load("r(1,a,x,u,7). r(1,b,y,u,7). r(2,a,x,v,8). r(2,a,z,v,9).");
  Predicate* p = Pred("r", 5);
  ASSERT_TRUE(program_
                  .DeclareIndex(p->functor(),
                                {{1}, {2}, {3, 5}})
                  .ok());
  // First field bound: uses index on arg 1.
  EXPECT_EQ(p->Candidates(store_, Parse("r(1,B,C,D,E)")).size(), 2u);
  // First unbound, second bound: index on arg 2.
  EXPECT_EQ(p->Candidates(store_, Parse("r(A,a,C,D,E)")).size(), 3u);
  // Only 3 and 5 bound: combined index.
  EXPECT_EQ(p->Candidates(store_, Parse("r(A,B,x,D,8)")).size(), 1u);
  // Nothing usable: all clauses.
  EXPECT_EQ(p->Candidates(store_, Parse("r(A,B,C,D,E)")).size(), 4u);
}

TEST_F(IndexTest, MultiFieldValidation) {
  Load("s(1,2).");
  Predicate* p = Pred("s", 2);
  EXPECT_FALSE(program_.DeclareIndex(p->functor(), {{1, 2, 3}}).ok());
  EXPECT_FALSE(
      program_.DeclareIndex(p->functor(), {{1, 2, 1, 2}}).ok());
  EXPECT_TRUE(program_.DeclareIndex(p->functor(), {{1, 2}}).ok());
}

TEST_F(IndexTest, FirstStringIndexPaperExample) {
  // Example 4.2 from the paper.
  Load("p(g(a),f(X)). p(g(a),f(a)). p(g(b),f(1)). p(g(X),Y).");
  Predicate* p = Pred("p", 2);
  ASSERT_TRUE(program_.DeclareFirstString(p->functor()).ok());
  ASSERT_NE(p->first_string_index(), nullptr);

  // Fully discriminating query: p(g(b), f(1)) -> clauses 2 and 3.
  auto c = p->Candidates(store_, Parse("p(g(b),f(1))"));
  EXPECT_EQ(c, (std::vector<ClauseId>{2, 3}));

  // p(g(a), f(b)): clause 0 (f(X) ended early), clause 3.
  c = p->Candidates(store_, Parse("p(g(a),f(b))"));
  EXPECT_EQ(c, (std::vector<ClauseId>{0, 3}));

  // Open query keeps everything.
  c = p->Candidates(store_, Parse("p(U,V)"));
  EXPECT_EQ(c.size(), 4u);

  // p(g(a), Z): variable in call stops discrimination under g(a).
  c = p->Candidates(store_, Parse("p(g(a),Z)"));
  EXPECT_EQ(c, (std::vector<ClauseId>{0, 1, 3}));
}

TEST_F(IndexTest, FirstStringTrieShapeMatchesFigure3) {
  Load("p(g(a),f(X)). p(g(a),f(a)). p(g(b),f(1)). p(g(X),Y).");
  Predicate* p = Pred("p", 2);
  ASSERT_TRUE(program_.DeclareFirstString(p->functor()).ok());
  std::string dump = p->first_string_index()->Dump(symbols_);
  // The trie discriminates g/1 then {a, b, var}; see Figure 3.
  EXPECT_NE(dump.find("g/1"), std::string::npos);
  EXPECT_NE(dump.find("f/1"), std::string::npos);
  // 4 strings: g a f, g a f a, g b f 1, g  -> shared prefix g/1.
  EXPECT_EQ(p->first_string_index()->NodeCount(), 8u);
}

TEST_F(IndexTest, RetractTombstonesStayOutOfLiveCount) {
  Load("t(1). t(2). t(3).");
  Predicate* p = Pred("t", 1);
  EXPECT_EQ(p->num_live_clauses(), 3u);
  p->EraseClause(1);
  EXPECT_EQ(p->num_live_clauses(), 2u);
  // Candidates may include the tombstone; caller filters.
  auto c = p->Candidates(store_, Parse("t(2)"));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_TRUE(p->clause(c[0]).erased);
}

TEST_F(IndexTest, AssertaPrependsAndReindexes) {
  Load("u(1,a). u(2,b).");
  Word front = Parse("u(1,z)");
  ASSERT_TRUE(program_.AddClauseTerm(store_, front, /*front=*/true).ok());
  Predicate* p = Pred("u", 2);
  auto c = p->Candidates(store_, Parse("u(1,Q)"));
  ASSERT_EQ(c.size(), 2u);
  // The prepended clause must come first.
  EXPECT_EQ(c[0], 0u);
}

TEST_F(IndexTest, SkipFlatSubtermWalksNestedTerms) {
  Word t = Parse("f(g(h(a),b),c)");
  FlatTerm flat = Flatten(store_, t);
  // Stream: f/2 g/2 h/1 a b c
  EXPECT_EQ(SkipFlatSubterm(symbols_, flat.cells, 0), flat.cells.size());
  EXPECT_EQ(SkipFlatSubterm(symbols_, flat.cells, 1), 5u);  // g(h(a),b)
  EXPECT_EQ(SkipFlatSubterm(symbols_, flat.cells, 2), 4u);  // h(a)
}

TEST_F(IndexTest, PropertyIndexedLookupEqualsLinearScan) {
  // Property test: for a pyramid of facts, every bound query returns the
  // same candidate set through the hash index as a linear scan filter.
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text +=
        "fact(" + std::to_string(i % 7) + "," + std::to_string(i) + "). ";
  }
  Load(text);
  Predicate* p = Pred("fact", 2);
  for (int key = 0; key < 9; ++key) {
    auto indexed =
        p->Candidates(store_, Parse("fact(" + std::to_string(key) + ",X)"));
    std::vector<ClauseId> linear;
    for (ClauseId id = 0; id < p->clauses().size(); ++id) {
      const Clause& clause = p->clause(id);
      size_t pos = FlatArgPos(symbols_, clause.term.cells, clause.head_pos, 0);
      if (clause.term.cells[pos] == IntCell(key)) linear.push_back(id);
    }
    EXPECT_EQ(indexed, linear) << "key " << key;
  }
}

}  // namespace
}  // namespace xsb
