// Differential update fuzzing for incremental table maintenance: seeded
// random programs subjected to random assert/retract/query interleavings.
// After every mutation the same query is answered five ways —
//   1. the persistent engine maintaining tables incrementally,
//   2. a persistent engine in baseline mode (updates abolish all tables),
//   3. a fresh engine consulted from scratch with the current facts,
//   4. bottom-up semi-naive evaluation of the current facts,
//   5. a persistent parallel QueryService (4 workers) mirroring every
//      update, with the step's queries submitted concurrently so cold
//      re-evaluation after invalidation races across the worker pool —
// and all five must agree. A divergence in (1) alone pins an invalidation
// bug (a table that should have been marked stale survived, or a
// re-evaluation picked up stale subsidiary answers); the fresh-engine and
// bottom-up oracles share no update machinery at all; (5) additionally
// exercises the shard-ownership protocol on the invalidate-then-requery
// path.
//
// Failures print an `ops:` repro line with the exact interleaving so a seed
// can be replayed by hand.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bottomup/seminaive.h"
#include "server/query_service.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

using AnswerSet = std::set<std::pair<std::string, std::string>>;
using Fact = std::pair<int, int>;

// One fuzzed scenario: rules over an incremental base predicate, the tabled
// query predicate, and its bottom-up equivalent.
struct Scenario {
  std::string directives;  // table + incremental declarations
  std::string rules;       // shared between SLG and bottom-up
  std::string base;        // the incremental predicate's name
  std::string query;       // e.g. "path(X, Y)"
  std::string query_pred;  // e.g. "path"
};

Scenario TransitiveClosure(bool left_recursive) {
  Scenario s;
  s.directives =
      ":- table path/2.\n"
      ":- incremental(edge/2).\n";
  s.rules = left_recursive
                ? "path(X,Y) :- edge(X,Y).\n"
                  "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                : "path(X,Y) :- edge(X,Y).\n"
                  "path(X,Y) :- edge(X,Z), path(Z,Y).\n";
  s.base = "edge";
  s.query = "path(X, Y)";
  s.query_pred = "path";
  return s;
}

Scenario SameGeneration() {
  Scenario s;
  s.directives =
      ":- table sg/2.\n"
      ":- incremental(par/2).\n";
  s.rules =
      "sg(X,Y) :- par(P,X), par(P,Y).\n"
      "sg(X,Y) :- par(XP,X), par(YP,Y), sg(XP,YP).\n";
  s.base = "par";
  s.query = "sg(X, Y)";
  s.query_pred = "sg";
  return s;
}

// Two mutually recursive tabled predicates over the same incremental base:
// invalidation must propagate around the table-to-table dependency cycle.
Scenario MutualReachability() {
  Scenario s;
  s.directives =
      ":- table odd/2.\n"
      ":- table even/2.\n"
      ":- incremental(edge/2).\n";
  s.rules =
      "odd(X,Y) :- edge(X,Y).\n"
      "odd(X,Y) :- edge(X,Z), even(Z,Y).\n"
      "even(X,Y) :- edge(X,Z), odd(Z,Y).\n";
  s.base = "edge";
  s.query = "odd(X, Y)";
  s.query_pred = "odd";
  return s;
}

std::string FactText(const std::string& base, const std::set<Fact>& facts) {
  std::string text;
  for (auto [a, b] : facts) {
    text +=
        base + "(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  return text;
}

std::string FactTerm(const std::string& base, Fact f) {
  return base + "(" + std::to_string(f.first) + "," +
         std::to_string(f.second) + ")";
}

AnswerSet Collect(Engine& engine, const std::string& query) {
  AnswerSet result;
  Status status = engine.ForEach(query, [&result](const Answer& a) {
    result.insert({a["X"], a["Y"]});
    return true;
  });
  EXPECT_TRUE(status.ok()) << status.message();
  return result;
}

AnswerSet FreshAnswers(const Scenario& s, const std::set<Fact>& facts) {
  Engine engine;
  EXPECT_TRUE(
      engine.ConsultString(s.directives + s.rules + FactText(s.base, facts))
          .ok());
  return Collect(engine, s.query);
}

AnswerSet BottomUpAnswers(const Scenario& s, const std::set<Fact>& facts) {
  // Semi-naive needs at least one fact per extensional predicate to know it;
  // an empty base means an empty derived relation.
  if (facts.empty()) return AnswerSet();
  datalog::DatalogProgram dl;
  EXPECT_TRUE(
      datalog::ParseDatalog(s.rules + FactText(s.base, facts), &dl).ok());
  datalog::Evaluation eval(&dl);
  EXPECT_TRUE(eval.Run().ok());
  AnswerSet result;
  datalog::PredId id = dl.InternPred(s.query_pred, 2);
  for (const datalog::Tuple& t : eval.relation(id).tuples()) {
    result.insert({dl.consts().ToString(t[0]), dl.consts().ToString(t[1])});
  }
  return result;
}

AnswerSet CollectService(QueryService& service, const std::string& query) {
  AnswerSet result;
  Result<std::vector<Answer>> answers = service.Query(query);
  EXPECT_TRUE(answers.ok())
      << (answers.ok() ? "" : answers.status().ToString());
  if (!answers.ok()) return result;
  for (const Answer& a : answers.value()) {
    result.insert({a["X"], a["Y"]});
  }
  return result;
}

Scenario PickScenario(uint32_t seed) {
  switch (seed % 4) {
    case 0:
      return TransitiveClosure(/*left_recursive=*/true);
    case 1:
      return TransitiveClosure(/*left_recursive=*/false);
    case 2:
      return SameGeneration();
    default:
      return MutualReachability();
  }
}

class IncrementalUpdateFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IncrementalUpdateFuzz, AgreesWithFromScratchAtEveryStep) {
  const uint32_t seed = GetParam();
  std::mt19937 rng(seed * 2654435761u + 17);
  Scenario s = PickScenario(seed);
  const int num_nodes = 4 + static_cast<int>(rng() % 4);  // 4..7

  // Seed facts.
  std::set<Fact> facts;
  int initial = 2 + static_cast<int>(rng() % (2 * num_nodes));
  for (int k = 0; k < initial; ++k) {
    facts.insert({1 + static_cast<int>(rng() % num_nodes),
                  1 + static_cast<int>(rng() % num_nodes)});
  }

  Engine incremental;
  ASSERT_TRUE(incremental
                  .ConsultString(s.directives + s.rules +
                                 FactText(s.base, facts))
                  .ok());
  Engine::Options baseline_options;
  baseline_options.incremental = false;
  Engine baseline(baseline_options);
  ASSERT_TRUE(baseline
                  .ConsultString(s.directives + s.rules +
                                 FactText(s.base, facts))
                  .ok());
  QueryService service({.num_workers = 4});
  ASSERT_TRUE(service
                  .Consult(s.directives + s.rules + FactText(s.base, facts))
                  .ok());

  std::string ops = "consult";  // repro line, grows one entry per step
  const int steps = 10 + static_cast<int>(rng() % 6);
  for (int step = 0; step < steps; ++step) {
    // Mutate: mostly asserts/retracts of random facts; occasionally touch a
    // specific variant first so several tables are live when the update hits.
    int roll = static_cast<int>(rng() % 10);
    Fact f = {1 + static_cast<int>(rng() % num_nodes),
              1 + static_cast<int>(rng() % num_nodes)};
    if (roll < 4) {
      // Assert (skipped when present: duplicate clauses would desync the
      // shadow set, and they add nothing under set semantics).
      if (facts.insert(f).second) {
        std::string goal = "assert(" + FactTerm(s.base, f) + ")";
        ops += " | " + goal;
        ASSERT_TRUE(incremental.Holds(goal).ok());
        ASSERT_TRUE(baseline.Holds(goal).ok());
        ASSERT_TRUE(service.Update(goal).ok());
      } else {
        ops += " | noop";
      }
    } else if (roll < 8) {
      // Retract: half the time an existing fact, else a random (likely
      // absent) one — both engines must agree that it failed.
      if (!facts.empty() && rng() % 2 == 0) {
        auto it = facts.begin();
        std::advance(it, rng() % facts.size());
        f = *it;
      }
      std::string goal = "retract(" + FactTerm(s.base, f) + ")";
      ops += " | " + goal;
      Result<bool> inc = incremental.Holds(goal);
      Result<bool> base = baseline.Holds(goal);
      ASSERT_TRUE(inc.ok() && base.ok());
      EXPECT_EQ(inc.value(), base.value()) << "ops: " << ops;
      EXPECT_EQ(inc.value(), facts.count(f) == 1) << "ops: " << ops;
      // Update() reports a failed goal as a status error, which is exactly
      // the retract-of-absent-fact case.
      EXPECT_EQ(service.Update(goal).ok(), facts.count(f) == 1)
          << "ops: " << ops;
      facts.erase(f);
    } else {
      // Query a ground-ish variant to multiply the live tables.
      std::string variant = s.query_pred + "(" +
                            std::to_string(1 + rng() % num_nodes) + ", Y)";
      ops += " | ?" + variant;
      ASSERT_TRUE(incremental.Holds(variant).ok());
      ASSERT_TRUE(baseline.Holds(variant).ok());
      ASSERT_TRUE(service.Query(variant).ok());
    }

    // Two variant probes race the full query across the service's worker
    // pool, so the post-update cold re-evaluation happens under contention.
    auto probe1 = service.Submit(
        s.query_pred + "(" + std::to_string(1 + rng() % num_nodes) + ", Y)");
    auto probe2 = service.Submit(
        s.query_pred + "(" + std::to_string(1 + rng() % num_nodes) + ", Y)");
    AnswerSet inc = Collect(incremental, s.query);
    AnswerSet base = Collect(baseline, s.query);
    AnswerSet fresh = FreshAnswers(s, facts);
    AnswerSet bottom_up = BottomUpAnswers(s, facts);
    AnswerSet parallel = CollectService(service, s.query);
    EXPECT_TRUE(probe1.get().ok());
    EXPECT_TRUE(probe2.get().ok());
    EXPECT_EQ(inc, fresh) << "seed " << seed << " step " << step
                          << "\nops: " << ops;
    EXPECT_EQ(base, fresh) << "seed " << seed << " step " << step
                           << "\nops: " << ops;
    EXPECT_EQ(bottom_up, fresh) << "seed " << seed << " step " << step
                                << "\nops: " << ops;
    EXPECT_EQ(parallel, fresh) << "seed " << seed << " step " << step
                               << "\nops: " << ops;
    if (HasFailure()) break;  // one repro line is enough
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalUpdateFuzz,
                         ::testing::Range(0u, 56u));

}  // namespace
}  // namespace xsb
