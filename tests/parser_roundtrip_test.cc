// Parser/writer round-trip fuzzing:
//   1. Structured: random terms built directly in the store are written with
//      WriteTerm(quoted) and re-parsed; the reparse must be a *variant* of
//      the original (identical FlatTerm cells — Flatten canonicalizes
//      variable names, so variance == cell equality).
//   2. Token soup: random token streams are thrown at the parser; whenever
//      one happens to parse, its printed form must parse back to a variant.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "parser/reader.h"
#include "parser/writer.h"
#include "term/flat.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

class TermFuzzer {
 public:
  TermFuzzer(TermStore* store, uint32_t seed) : store_(store), rng_(seed) {}

  Word Random(int depth) {
    switch (Pick(depth <= 0 ? 3 : 6)) {
      case 0:
        return AtomCell(store_->symbols()->InternAtom(RandomAtomName()));
      case 1:
        return IntCell(RandomInt());
      case 2:
        return Var(rng_() % 4);
      case 3: {  // compound
        int arity = 1 + static_cast<int>(rng_() % 3);
        std::vector<Word> args;
        for (int i = 0; i < arity; ++i) args.push_back(Random(depth - 1));
        FunctorId f = store_->symbols()->InternFunctor(
            store_->symbols()->InternAtom(RandomAtomName()), arity);
        return store_->MakeStruct(f, args);
      }
      case 4: {  // proper list
        int len = static_cast<int>(rng_() % 3);
        std::vector<Word> items;
        for (int i = 0; i < len; ++i) items.push_back(Random(depth - 1));
        return store_->MakeList(items,
                                AtomCell(store_->symbols()->nil()));
      }
      default: {  // partial list with variable tail
        std::vector<Word> items = {Random(depth - 1)};
        return store_->MakeList(items, Var(rng_() % 4));
      }
    }
  }

  std::string RandomToken() {
    static const char* kTokens[] = {
        "foo", "bar",  "'a b'", "X",  "Y",   "_",  "42", "0",  "(", ")",
        "[",   "]",    "|",     ",",  "f",   "g",  "-",  "+",  "*", "is",
        ":-",  "]",    ")",     "a",  "7",   "[]", "h",  "Zs", ".", "=",
    };
    return kTokens[rng_() % (sizeof(kTokens) / sizeof(kTokens[0]))];
  }

 private:
  uint32_t Pick(uint32_t n) { return rng_() % n; }

  int64_t RandomInt() { return static_cast<int64_t>(rng_() % 2000); }

  std::string RandomAtomName() {
    // Plain atoms, capitalized/space-laden ones that need quoting, and a
    // quote-bearing name that needs escaping.
    static const char* kNames[] = {"a",     "foo",  "bar_1", "Caps",
                                   "two words", "it''s ok-ish", "f",
                                   "nil",   "+",    "yes"};
    std::string name = kNames[rng_() % (sizeof(kNames) / sizeof(kNames[0]))];
    // Undo the doubled quote: the pool stores source-escaped forms.
    std::string out;
    for (size_t i = 0; i < name.size(); ++i) {
      out += name[i];
      if (name[i] == '\'' && i + 1 < name.size() && name[i + 1] == '\'') ++i;
    }
    return out;
  }

  Word Var(uint32_t slot) {
    while (vars_.size() <= slot) vars_.push_back(store_->MakeVar());
    return vars_[slot];
  }

  TermStore* store_;
  std::mt19937 rng_;
  std::vector<Word> vars_;
};

class ParserRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserRoundTrip, RandomTermsSurviveWriteThenParse) {
  Engine engine;  // gives us a store + default operator table
  TermStore& store = engine.store();
  const OpTable* ops = engine.program().ops();
  TermFuzzer fuzz(&store, GetParam());

  for (int round = 0; round < 40; ++round) {
    size_t trail = store.TrailMark();
    Word original = fuzz.Random(3);
    FlatTerm before = Flatten(store, original);
    std::string text = WriteTerm(store, *ops, original);
    Result<Word> reparsed = ParseTermString(&store, ops, text);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << GetParam() << " round " << round
        << ": writer output did not reparse: " << text;
    FlatTerm after = Flatten(store, reparsed.value());
    EXPECT_EQ(before.cells, after.cells)
        << "seed " << GetParam() << " round " << round << ": " << text;
    EXPECT_EQ(before.num_vars, after.num_vars) << text;
    store.UndoTrail(trail);
  }
}

TEST_P(ParserRoundTrip, TokenSoupParsesAreStable) {
  Engine engine;
  TermStore& store = engine.store();
  const OpTable* ops = engine.program().ops();
  TermFuzzer fuzz(&store, GetParam() * 7919u + 13);
  std::mt19937 rng(GetParam());

  int parsed_ok = 0;
  for (int round = 0; round < 120; ++round) {
    int len = 1 + static_cast<int>(rng() % 8);
    std::string text;
    for (int i = 0; i < len; ++i) {
      if (i > 0) text += " ";
      text += fuzz.RandomToken();
    }
    Result<Word> first = ParseTermString(&store, ops, text);
    if (!first.ok()) continue;  // rejection is fine; crashes are not
    ++parsed_ok;
    FlatTerm before = Flatten(store, first.value());
    std::string printed = WriteTerm(store, *ops, first.value());
    Result<Word> second = ParseTermString(&store, ops, printed);
    ASSERT_TRUE(second.ok())
        << "accepted input printed unparsable: " << text << " -> " << printed;
    FlatTerm after = Flatten(store, second.value());
    EXPECT_EQ(before.cells, after.cells)
        << text << " -> " << printed << " (seed " << GetParam() << ")";
  }
  // The vocabulary guarantees some single-token parses (atoms, ints, vars).
  EXPECT_GT(parsed_ok, 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace xsb
