#include <gtest/gtest.h>

#include <unordered_set>

#include "term/flat.h"
#include "term/store.h"

namespace xsb {
namespace {

class FlatTest : public ::testing::Test {
 protected:
  FlatTest() : store_(&symbols_) {}

  Word Atom(const char* name) { return AtomCell(symbols_.InternAtom(name)); }
  Word S(const char* name, std::vector<Word> args) {
    FunctorId f = symbols_.InternFunctor(symbols_.InternAtom(name),
                                         static_cast<int>(args.size()));
    return store_.MakeStruct(f, args);
  }

  SymbolTable symbols_;
  TermStore store_;
};

TEST_F(FlatTest, AtomFlattens) {
  FlatTerm f = Flatten(store_, Atom("a"));
  EXPECT_EQ(f.cells.size(), 1u);
  EXPECT_EQ(f.num_vars, 0u);
  EXPECT_TRUE(f.ground());
}

TEST_F(FlatTest, VariablesNumberedByFirstOccurrence) {
  Word x = store_.MakeVar();
  Word y = store_.MakeVar();
  // f(Y, X, Y) -> locals 0,1,0
  FlatTerm f = Flatten(store_, S("f", {y, x, y}));
  ASSERT_EQ(f.cells.size(), 4u);
  EXPECT_EQ(f.num_vars, 2u);
  EXPECT_EQ(f.cells[1], LocalCell(0));
  EXPECT_EQ(f.cells[2], LocalCell(1));
  EXPECT_EQ(f.cells[3], LocalCell(0));
}

TEST_F(FlatTest, VariantsHaveEqualFlats) {
  Word x1 = store_.MakeVar();
  Word y1 = store_.MakeVar();
  Word t1 = S("p", {x1, S("g", {y1, x1})});
  Word x2 = store_.MakeVar();
  Word y2 = store_.MakeVar();
  Word t2 = S("p", {y2, S("g", {x2, y2})});
  EXPECT_EQ(Flatten(store_, t1), Flatten(store_, t2));
  EXPECT_EQ(FlatTermHash()(Flatten(store_, t1)),
            FlatTermHash()(Flatten(store_, t2)));
}

TEST_F(FlatTest, NonVariantsDiffer) {
  Word x = store_.MakeVar();
  Word y = store_.MakeVar();
  // p(X, X) is not a variant of p(X, Y).
  Word t1 = S("p", {x, x});
  Word t2 = S("p", {x, y});
  EXPECT_FALSE(Flatten(store_, t1) == Flatten(store_, t2));
}

TEST_F(FlatTest, UnflattenRebuildsStructure) {
  Word x = store_.MakeVar();
  Word t = S("f", {Atom("a"), S("g", {x, IntCell(7)}), x});
  FlatTerm flat = Flatten(store_, t);
  Word rebuilt = Unflatten(&store_, flat);
  // The rebuilt term unifies with a fresh variant and is structurally a
  // variant of the original.
  EXPECT_EQ(Flatten(store_, rebuilt), flat);
}

TEST_F(FlatTest, UnflattenSharesVariablesAcrossCalls) {
  Word x = store_.MakeVar();
  FlatTerm fx = Flatten(store_, S("f", {x}));
  FlatTerm gx = Flatten(store_, S("g", {x}));
  std::vector<Word> vars;
  Word t1 = Unflatten(&store_, fx, &vars);
  Word t2 = Unflatten(&store_, gx, &vars);
  // Bind through t1, observe through t2.
  Word v1 = store_.Deref(store_.Arg(store_.Deref(t1), 0));
  EXPECT_TRUE(store_.Unify(v1, Atom("bound")));
  Word v2 = store_.Deref(store_.Arg(store_.Deref(t2), 0));
  EXPECT_EQ(v2, Atom("bound"));
}

TEST_F(FlatTest, FlattenRespectsBindings) {
  Word x = store_.MakeVar();
  Word t = S("f", {x});
  FlatTerm before = Flatten(store_, t);
  EXPECT_EQ(before.num_vars, 1u);
  ASSERT_TRUE(store_.Unify(x, Atom("a")));
  FlatTerm after = Flatten(store_, t);
  EXPECT_EQ(after.num_vars, 0u);
  EXPECT_TRUE(after.ground());
}

TEST_F(FlatTest, FlatTopFunctorReadsHead) {
  FlatTerm f = Flatten(store_, S("edge", {IntCell(1), IntCell(2)}));
  FunctorId functor;
  ASSERT_TRUE(FlatTopFunctor(f, &functor));
  EXPECT_EQ(symbols_.AtomName(symbols_.FunctorAtom(functor)), "edge");
  EXPECT_EQ(symbols_.FunctorArity(functor), 2);
  FlatTerm a = Flatten(store_, Atom("x"));
  EXPECT_FALSE(FlatTopFunctor(a, &functor));
}

TEST_F(FlatTest, HashDistributesDistinctGroundTerms) {
  std::unordered_set<size_t> hashes;
  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    FlatTerm f = Flatten(store_, S("t", {IntCell(i), IntCell(i * 3)}));
    hashes.insert(FlatTermHash()(f));
  }
  // No catastrophic collisions.
  EXPECT_GT(hashes.size(), kCount * 9 / 10);
}

TEST_F(FlatTest, RoundTripPropertyOnNestedTerms) {
  // Property: Flatten(Unflatten(f)) == f for a family of generated terms.
  for (int depth = 0; depth < 6; ++depth) {
    Word t = Atom("leaf");
    for (int i = 0; i < depth; ++i) {
      Word v = store_.MakeVar();
      t = S("n", {t, v, IntCell(i)});
    }
    FlatTerm f = Flatten(store_, t);
    EXPECT_EQ(Flatten(store_, Unflatten(&store_, f)), f) << "depth " << depth;
  }
}

}  // namespace
}  // namespace xsb
