// Tests for the mode analysis (src/analysis/modes.*): the instantiation
// lattice, the per-predicate per-call-pattern fixpoint, published modes
// (Predicate::modes() and predicate_mode/2), the M-series diagnostics, the
// retract republication of shard masks, and a seeded property sweep of the
// mode-specialized engine against the bottom-up oracle.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

using analysis::AnalysisResult;
using analysis::DiagCode;
using analysis::Diagnostic;
using analysis::Inst;
using analysis::InstVec;
using analysis::ModeEntry;
using analysis::PredModes;

const Diagnostic* FindCode(const AnalysisResult& result, DiagCode code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

FunctorId Functor(Engine& engine, const char* name, int arity) {
  return engine.symbols().InternFunctor(engine.symbols().InternAtom(name),
                                        arity);
}

// --- The lattice -------------------------------------------------------------

TEST(ModeLattice, JoinIsLeastUpperBound) {
  EXPECT_EQ(JoinInst(Inst::kGround, Inst::kGround), Inst::kGround);
  EXPECT_EQ(JoinInst(Inst::kGround, Inst::kNonvar), Inst::kNonvar);
  EXPECT_EQ(JoinInst(Inst::kNonvar, Inst::kGround), Inst::kNonvar);
  EXPECT_EQ(JoinInst(Inst::kFree, Inst::kFree), Inst::kFree);
  // free and the bound states have disjoint concretizations: lub is any.
  EXPECT_EQ(JoinInst(Inst::kGround, Inst::kFree), Inst::kAny);
  EXPECT_EQ(JoinInst(Inst::kFree, Inst::kNonvar), Inst::kAny);
  EXPECT_EQ(JoinInst(Inst::kAny, Inst::kGround), Inst::kAny);
}

TEST(ModeLattice, LeqMatchesTheHasseDiagram) {
  EXPECT_TRUE(InstLeq(Inst::kGround, Inst::kNonvar));
  EXPECT_TRUE(InstLeq(Inst::kGround, Inst::kAny));
  EXPECT_TRUE(InstLeq(Inst::kNonvar, Inst::kAny));
  EXPECT_TRUE(InstLeq(Inst::kFree, Inst::kAny));
  EXPECT_FALSE(InstLeq(Inst::kNonvar, Inst::kGround));
  EXPECT_FALSE(InstLeq(Inst::kFree, Inst::kNonvar));
  EXPECT_FALSE(InstLeq(Inst::kGround, Inst::kFree));
  EXPECT_FALSE(InstLeq(Inst::kAny, Inst::kFree));
  for (Inst i : {Inst::kGround, Inst::kNonvar, Inst::kFree, Inst::kAny}) {
    EXPECT_TRUE(InstLeq(i, i));
  }
}

TEST(ModeLattice, AbsUnifyKeepsTheMostBoundSide) {
  // Unification only instantiates further: a ground side makes both ground.
  EXPECT_EQ(AbsUnifyInst(Inst::kGround, Inst::kFree), Inst::kGround);
  EXPECT_EQ(AbsUnifyInst(Inst::kFree, Inst::kGround), Inst::kGround);
  EXPECT_EQ(AbsUnifyInst(Inst::kGround, Inst::kAny), Inst::kGround);
  EXPECT_EQ(AbsUnifyInst(Inst::kNonvar, Inst::kFree), Inst::kNonvar);
  EXPECT_EQ(AbsUnifyInst(Inst::kFree, Inst::kFree), Inst::kFree);
  // free against any may come out anything.
  EXPECT_EQ(AbsUnifyInst(Inst::kFree, Inst::kAny), Inst::kAny);
}

TEST(ModeLattice, SpecMeetConflictsFallToAny) {
  // any is the identity (an uninformative site constrains nothing).
  EXPECT_EQ(SpecMeetInst(Inst::kAny, Inst::kGround), Inst::kGround);
  EXPECT_EQ(SpecMeetInst(Inst::kFree, Inst::kAny), Inst::kFree);
  EXPECT_EQ(SpecMeetInst(Inst::kGround, Inst::kNonvar), Inst::kGround);
  // free vs bound sites genuinely conflict: specializing either way would
  // send half the calls through the fallback, so the target is any.
  EXPECT_EQ(SpecMeetInst(Inst::kFree, Inst::kGround), Inst::kAny);
  EXPECT_EQ(SpecMeetInst(Inst::kNonvar, Inst::kFree), Inst::kAny);
}

// --- The fixpoint ------------------------------------------------------------

TEST(ModeFixpoint, TransitiveClosureInfersGroundSuccess) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  ASSERT_GT(result.modes.iterations, 0u);

  const PredModes& edge = result.modes.preds.at(Functor(engine, "edge", 2));
  // edge/2 is all ground facts: every pattern succeeds ground.
  ASSERT_EQ(edge.success_join.size(), 2u);
  EXPECT_EQ(edge.success_join[0], Inst::kGround);
  EXPECT_EQ(edge.success_join[1], Inst::kGround);
  // The recursive clause calls edge(Z,Y) with Z bound by path's ground
  // success, so edge has a site pattern with a ground first argument.
  bool saw_ground_first = false;
  for (const analysis::ModePattern& pat : edge.patterns) {
    if (pat.from_site && pat.call.size() == 2 &&
        pat.call[0] == Inst::kGround) {
      saw_ground_first = true;
    }
  }
  EXPECT_TRUE(saw_ground_first);

  const PredModes& path = result.modes.preds.at(Functor(engine, "path", 2));
  ASSERT_EQ(path.success_join.size(), 2u);
  EXPECT_EQ(path.success_join[0], Inst::kGround);
  EXPECT_EQ(path.success_join[1], Inst::kGround);
  // path/2 is only called from its own recursive clause; the analysis saw
  // that site, so a site join exists.
  EXPECT_FALSE(path.patterns.empty());
}

TEST(ModeFixpoint, EntrySeedsCreateSitePatterns) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("nrev([], []).\n"
                                 "nrev([H|T], R) :- nrev(T, RT), "
                                 "app(RT, [H], R).\n"
                                 "app([], L, L).\n"
                                 "app([H|T], L, [H|R]) :- app(T, L, R).\n")
                  .ok());
  analysis::AnalyzeOptions options;
  ModeEntry entry;
  entry.functor = Functor(engine, "nrev", 2);
  entry.call = {Inst::kGround, Inst::kFree};
  options.mode_entries.push_back(entry);
  AnalysisResult result = engine.Analyze(options);

  const PredModes& nrev = result.modes.preds.at(entry.functor);
  const analysis::ModePattern* seeded = nullptr;
  for (const analysis::ModePattern& pat : nrev.patterns) {
    if (pat.from_site && pat.call == entry.call) seeded = &pat;
  }
  ASSERT_NE(seeded, nullptr);
  // A ground list reversed is a ground list — under the seeded pattern.
  // (The all-any top pattern stays weaker, so the success *join* does not
  // reach ground; per-pattern precision is exactly the point.)
  ASSERT_TRUE(seeded->success_known);
  ASSERT_EQ(seeded->success.size(), 2u);
  EXPECT_EQ(seeded->success[0], Inst::kGround);
  EXPECT_EQ(seeded->success[1], Inst::kGround);
  // The spec meet keeps the seeded precision (ground, free): the WAM
  // specializer can drop nrev's write-mode handling for argument 1.
  ASSERT_EQ(nrev.spec_meet.size(), 2u);
  EXPECT_EQ(nrev.spec_meet[0], Inst::kGround);
}

TEST(ModeFixpoint, PatternsAreCappedNotUnbounded) {
  // Many distinct call shapes for one predicate: the tabulation must stay
  // bounded (overflow folds into the all-any top pattern, which is sound).
  std::string text = "sink(_, _).\n";
  std::string callers;
  for (int i = 0; i < 24; ++i) {
    // Alternate bound/free shapes to force distinct patterns.
    callers += "c" + std::to_string(i) + "(Y) :- sink(" +
               (i % 2 == 0 ? std::to_string(i) : "Y") + ", " +
               (i % 3 == 0 ? "Y" : std::to_string(i)) + ").\n";
  }
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(text + callers).ok());
  AnalysisResult result = engine.Analyze();
  const PredModes& sink = result.modes.preds.at(Functor(engine, "sink", 2));
  EXPECT_LE(sink.patterns.size(), 9u);  // top + at most kMaxSitePatterns
}

TEST(ModeFixpoint, NeverSucceedingPredicateHasEmptySuccessJoin) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("dead(X) :- fail, X = 1.\n"
                                 "user(X) :- dead(X).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const PredModes& dead = result.modes.preds.at(Functor(engine, "dead", 1));
  EXPECT_TRUE(dead.success_join.empty());
  const PredModes& user = result.modes.preds.at(Functor(engine, "user", 1));
  EXPECT_TRUE(user.success_join.empty());
}

TEST(ModeFixpoint, HiLogVariableTargetIsNotProvenFailing) {
  // path(G)(X,Y) :- G(X,Y).  The inner goal is apply/3 with a *variable*
  // target: at runtime it dispatches to whatever first-order predicate G
  // is bound to (edge1/2 here), which the analysis cannot see. Resolving
  // it against the stored apply/N clauses instead would make apply/3 look
  // like recursion with no base case — "proven to never succeed" — and
  // the XSB_MODE_ORACLE build would abort on the first real answer. The
  // analysis must treat it as an opaque meta-call.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("edge1(1,2). edge1(2,3). edge1(3,1).\n"
                                 ":- table apply/3.\n"
                                 "path(Graph)(X, Y) :- Graph(X, Y).\n"
                                 "path(Graph)(X, Y) :- path(Graph)(X, Z), "
                                 "Graph(Z, Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  FunctorId apply3 = Functor(engine, "apply", 3);
  EXPECT_GT(result.modes.meta_callers.count(apply3), 0u);
  const PredModes& pm = result.modes.preds.at(apply3);
  // Non-empty success join: apply/3 answers exist and must satisfy it.
  ASSERT_FALSE(pm.success_join.empty());
  EXPECT_EQ(pm.success_join[0], Inst::kNonvar);  // heads are path(G)
  // And the engine really does answer (under the oracle this also
  // exercises the check on every derived answer).
  size_t answers = 0;
  ASSERT_TRUE(engine
                  .ForEach("path(edge1)(1, X)",
                           [&answers](const Answer&) {
                             ++answers;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(answers, 3u);
}

// --- Diagnostics -------------------------------------------------------------

TEST(ModeDiagnostics, InferredModesReportedAsM001) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("lookup(a, 1). lookup(b, 2).\n"
                                 "use(V) :- lookup(a, V).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* d = FindCode(result, DiagCode::kInferredModes);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ground"), std::string::npos) << d->message;
}

TEST(ModeDiagnostics, NeverBoundArgumentReportedAsM002) {
  Engine engine;
  // gen/1's argument is a fresh (definitely free) variable at every call
  // site: the analysis should point the index advisor away from it (M002).
  ASSERT_TRUE(engine
                  .ConsultString("gen(1). gen(2). gen(3).\n"
                                 "top(Y) :- gen(X), Y is X * 2.\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  const Diagnostic* d = FindCode(result, DiagCode::kNeverBound);
  ASSERT_NE(d, nullptr);
}

TEST(ModeDiagnostics, FreeIntoArithmeticIsM003) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("inc(X, Y) :- Y is X + 1.\n"
                                 "top(Y) :- inc(A, Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  ASSERT_FALSE(result.modes.violations.empty());
  const analysis::ModeViolation& v = result.modes.violations.front();
  EXPECT_EQ(v.callee, Functor(engine, "inc", 2));
  EXPECT_EQ(v.argnum, 1);
  const Diagnostic* d = FindCode(result, DiagCode::kModeViolation);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, analysis::Severity::kWarning);
}

TEST(ModeDiagnostics, BoundCallSitesRaiseNoM003) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("inc(X, Y) :- Y is X + 1.\n"
                                 "top(Y) :- inc(41, Y).\n")
                  .ok());
  AnalysisResult result = engine.Analyze();
  EXPECT_TRUE(result.modes.violations.empty());
  EXPECT_EQ(FindCode(result, DiagCode::kModeViolation), nullptr);
}

// --- Publication and predicate_mode/2 ---------------------------------------

TEST(ModePublication, ConsultPublishesModesOnPredicates) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3).\n")
                  .ok());
  const Predicate* edge =
      engine.program().Lookup(Functor(engine, "edge", 2));
  ASSERT_NE(edge, nullptr);
  ASSERT_NE(edge->modes(), nullptr);
  EXPECT_EQ(edge->modes()->epoch, engine.program().clause_epoch());
  ASSERT_EQ(edge->modes()->success_join.size(), 2u);
  EXPECT_EQ(edge->modes()->success_join[0], kModeGround);
  // Every published pattern of a tabled-reaching predicate carries a
  // nonzero shard reach mask.
  const Predicate* path =
      engine.program().Lookup(Functor(engine, "path", 2));
  ASSERT_NE(path, nullptr);
  ASSERT_NE(path->modes(), nullptr);
  for (const PublishedModes::Pattern& pat : path->modes()->patterns) {
    EXPECT_NE(pat.reach_mask, 0u);
  }
}

TEST(ModePublication, PredicateModeBuiltinReportsJoins) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString("lookup(a, 1). lookup(b, 2).\n"
                                 "use(V) :- lookup(a, V).\n")
                  .ok());
  Result<std::vector<Answer>> r =
      engine.FindAll("predicate_mode(lookup/2, M)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  std::string m = r.value()[0]["M"];
  // Call sites always pass a ground first argument (the head-var second
  // argument joins to any) and success grounds both arguments.
  EXPECT_NE(m.find("call - [ground,any]"), std::string::npos) << m;
  EXPECT_NE(m.find("success - [ground,ground]"), std::string::npos) << m;
}

TEST(ModePublication, PredicateModeFailsForUnknownPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString("a(1).\n").ok());
  Result<size_t> n = engine.Count("predicate_mode(nosuch/3, M)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

// --- Satellite: retract republishes the shard masks --------------------------

TEST(ModeRepublication, RetractShrinksReachMasks) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table p/1.\n"
                                 ":- table q/1.\n"
                                 "p(0).\n"
                                 "p(X) :- q(X).\n"
                                 "q(1). q(2).\n")
                  .ok());
  const Predicate* p = engine.program().Lookup(Functor(engine, "p", 1));
  const Predicate* q = engine.program().Lookup(Functor(engine, "q", 1));
  ASSERT_NE(p, nullptr);
  ASSERT_NE(q, nullptr);
  ASSERT_GE(p->eval_shard(), 0);
  ASSERT_GE(q->eval_shard(), 0);
  // Before the retract, p's cold calls must own q's shard.
  ASSERT_NE(p->eval_reach_mask() & EvalShardBit(q->eval_shard()), 0u);

  Result<size_t> n = engine.Count("retract((p(X) :- q(X)))");
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 1u);

  // The erasure severed the only p -> q edge; a stale mask here would make
  // every cold p call over-acquire q's shard forever (the regression this
  // test pins): the retract must republish the analysis.
  p = engine.program().Lookup(Functor(engine, "p", 1));
  q = engine.program().Lookup(Functor(engine, "q", 1));
  ASSERT_GE(p->eval_shard(), 0);
  ASSERT_GE(q->eval_shard(), 0);
  EXPECT_EQ(p->eval_reach_mask() & EvalShardBit(q->eval_shard()), 0u);
  EXPECT_NE(p->eval_reach_mask() & EvalShardBit(p->eval_shard()), 0u);

  // And evaluation still works on both sides of the shrunken program.
  Result<size_t> pc = engine.Count("p(X)");
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pc.value(), 1u);
  Result<size_t> qc = engine.Count("q(X)");
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(qc.value(), 2u);
}

TEST(ModeRepublication, RetractallAndAbolishAlsoRepublish) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table p/1.\n"
                                 ":- table q/1.\n"
                                 "p(0).\n"
                                 "p(X) :- q(X).\n"
                                 "q(1). q(2).\n")
                  .ok());
  const Predicate* p = engine.program().Lookup(Functor(engine, "p", 1));
  const Predicate* q = engine.program().Lookup(Functor(engine, "q", 1));
  ASSERT_NE(p->eval_reach_mask() & EvalShardBit(q->eval_shard()), 0u);
  ASSERT_TRUE(engine.Count("retractall(p(_))").ok());
  // p lost every clause; whatever shard state it ends up with, q's own
  // published mask must have been recomputed against the shrunken program
  // (its reach is just itself).
  q = engine.program().Lookup(Functor(engine, "q", 1));
  ASSERT_GE(q->eval_shard(), 0);
  EXPECT_EQ(q->eval_reach_mask(), EvalShardBit(q->eval_shard()));
  Result<size_t> qc = engine.Count("q(X)");
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(qc.value(), 2u);
}

// --- Property sweep: mode-published engine vs bottom-up oracle ---------------

// Random digraphs as in differential_test.cc, kept small enough for tier1.
std::string RandomEdges(uint32_t seed, int* num_nodes) {
  std::mt19937 rng(seed * 2654435761u + 17);
  int n = 4 + static_cast<int>(rng() % 5);  // 4..8 nodes
  *num_nodes = n;
  std::set<std::pair<int, int>> edges;
  int num_edges = n + static_cast<int>(rng() % n);
  for (int k = 0; k < num_edges; ++k) {
    int a = 1 + static_cast<int>(rng() % n);
    int b = 1 + static_cast<int>(rng() % n);
    edges.insert({a, b});
  }
  std::string text;
  for (auto [a, b] : edges) {
    text += "edge(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  return text;
}

using AnswerSet = std::set<std::pair<std::string, std::string>>;

class ModeSweep : public ::testing::TestWithParam<uint32_t> {};

// The SLG engine runs with modes published (goal-aware shard masks, the
// sanitizer-build answer oracle when XSB_MODE_ORACLE is on); the bottom-up
// engine shares none of that machinery. Full and first-argument-bound
// queries must agree on every seed.
TEST_P(ModeSweep, AgreesWithBottomUpUnderPublishedModes) {
  int n = 0;
  std::string edges = RandomEdges(GetParam(), &n);
  std::string rules =
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(":- table path/2.\n" + rules + edges).ok());
  ASSERT_NE(engine.program()
                .Lookup(Functor(engine, "path", 2))
                ->modes(),
            nullptr);
  AnswerSet slg;
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&slg](const Answer& a) {
                             slg.insert({a["X"], a["Y"]});
                             return true;
                           })
                  .ok());

  datalog::DatalogProgram dl;
  ASSERT_TRUE(datalog::ParseDatalog(rules + edges, &dl).ok());
  datalog::Evaluation eval(&dl);
  ASSERT_TRUE(eval.Run().ok());
  AnswerSet bottom_up;
  datalog::PredId pid = dl.InternPred("path", 2);
  for (const datalog::Tuple& t : eval.relation(pid).tuples()) {
    bottom_up.insert(
        {dl.consts().ToString(t[0]), dl.consts().ToString(t[1])});
  }
  EXPECT_EQ(slg, bottom_up) << "seed " << GetParam();

  // Bound-first-argument queries take the goal-aware mask refinement path.
  for (int a = 1; a <= n; ++a) {
    AnswerSet bound;
    ASSERT_TRUE(engine
                    .ForEach("path(" + std::to_string(a) + ", Y)",
                             [&](const Answer& ans) {
                               bound.insert({std::to_string(a), ans["Y"]});
                               return true;
                             })
                    .ok());
    AnswerSet expected;
    for (const auto& [x, y] : bottom_up) {
      if (x == std::to_string(a)) expected.insert({x, y});
    }
    EXPECT_EQ(bound, expected) << "seed " << GetParam() << " from " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeSweep, ::testing::Range(0u, 51u));

}  // namespace
}  // namespace xsb
