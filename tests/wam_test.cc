#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "db/loader.h"
#include "db/program.h"
#include "engine/machine.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace xsb::wam {
namespace {

class WamTest : public ::testing::Test {
 protected:
  WamTest() : store_(&symbols_), program_(&symbols_) {}

  void Load(const std::string& text) {
    Loader loader(&store_, &program_);
    Status s = loader.ConsultString(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void CompileAll() {
    Result<CompiledModule> compiled = CompileModule(&store_, program_, {});
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    module_ = std::move(compiled.value());
    emulator_ = std::make_unique<Emulator>(&store_, &module_);
  }

  Word Parse(const std::string& text) {
    Result<Word> r = ParseTermString(&store_, program_.ops(), text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  size_t Count(const std::string& goal) {
    size_t count = 0;
    size_t trail = store_.TrailMark();
    Status s = emulator_->Solve(Parse(goal), [&count]() {
      ++count;
      return WamAction::kContinue;
    });
    store_.UndoTrail(trail);
    EXPECT_TRUE(s.ok()) << goal << ": " << s.ToString();
    return count;
  }

  bool Holds(const std::string& goal) { return Count(goal) > 0; }

  // First solution's instance of the goal, rendered.
  std::string First(const std::string& goal) {
    Word g = Parse(goal);
    size_t trail = store_.TrailMark();
    std::string out = "<none>";
    Status s = emulator_->Solve(g, [&]() {
      out = WriteTerm(store_, *program_.ops(), g);
      return WamAction::kStop;
    });
    store_.UndoTrail(trail);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
  CompiledModule module_;
  std::unique_ptr<Emulator> emulator_;
};

TEST_F(WamTest, FactsUnifyConstants) {
  Load("e(1,2). e(2,3). e(3,4).\n");
  CompileAll();
  EXPECT_TRUE(Holds("e(1,2)"));
  EXPECT_FALSE(Holds("e(1,3)"));
  EXPECT_EQ(Count("e(X,Y)"), 3u);
  EXPECT_EQ(Count("e(2,X)"), 1u);
  EXPECT_EQ(First("e(2,X)"), "e(2,3)");
}

TEST_F(WamTest, SwitchOnConstantIndexes) {
  std::string facts;
  for (int i = 0; i < 500; ++i) {
    facts += "f(" + std::to_string(i) + "," + std::to_string(i * 2) + ").\n";
  }
  Load(facts);
  CompileAll();
  uint64_t before = 0;
  {
    // Bound first arg: the switch must go straight to one clause.
    size_t trail = store_.TrailMark();
    before = emulator_->stats().instructions;
    ASSERT_TRUE(emulator_
                    ->Solve(Parse("f(250, X)"),
                            []() { return WamAction::kContinue; })
                    .ok());
    store_.UndoTrail(trail);
  }
  uint64_t bound_cost = emulator_->stats().instructions - before;
  EXPECT_LT(bound_cost, 40u);  // no scan over 500 clauses
  EXPECT_EQ(Count("f(X, Y)"), 500u);  // unbound still enumerates all
}

TEST_F(WamTest, SwitchOnStructureIndexes) {
  // 200 clauses keyed by distinct functors plus a few constants: a bound
  // structure-keyed call must dispatch through the functor table, not scan.
  std::string facts = "g(nil, base). g(0, zero).\n";
  for (int i = 0; i < 200; ++i) {
    facts += "g(k" + std::to_string(i) + "(a), " + std::to_string(i) + ").\n";
  }
  Load(facts);
  CompileAll();
  uint64_t before = emulator_->stats().instructions;
  uint64_t hits_before = emulator_->stats().switch_structure_hits;
  EXPECT_EQ(First("g(k150(a), V)"), "g(k150(a),150)");
  EXPECT_LT(emulator_->stats().instructions - before, 40u);
  EXPECT_GT(emulator_->stats().switch_structure_hits, hits_before);
  // The constant side of the same two-level switch still works...
  EXPECT_EQ(First("g(nil, V)"), "g(nil,base)");
  EXPECT_EQ(First("g(0, V)"), "g(0,zero)");
  // ...misses on either side fail, and unbound enumerates everything.
  EXPECT_FALSE(Holds("g(nosuch(a), V)"));
  EXPECT_FALSE(Holds("g(nosuchatom, V)"));
  EXPECT_EQ(Count("g(X, Y)"), 202u);
}

TEST_F(WamTest, ListFastPathAndBucketChains) {
  // './2' rides the switch_on_structure list fast path; same-key clauses
  // share an order-preserving try/retry/trust bucket.
  Load("m([], empty).\n"
       "m([_|_], cons_a).\n"
       "m([_,_|_], cons_b).\n"
       "m(f(_), fun).\n");
  CompileAll();
  EXPECT_EQ(Count("m([1,2], V)"), 2u);  // both './2' bucket clauses
  EXPECT_EQ(First("m([1,2], V)"), "m([1,2],cons_a)");  // source order kept
  EXPECT_EQ(Count("m([1], V)"), 1u);
  EXPECT_EQ(First("m([], V)"), "m([],empty)");
  EXPECT_EQ(First("m(f(9), V)"), "m(f(9),fun)");
  EXPECT_EQ(Count("m(X, V)"), 4u);
}

TEST_F(WamTest, StructureSwitchDeletesNrevChoicePoints) {
  // EXPERIMENTS.md §3.2's headroom item: nrev30 used to push 496 choice
  // points through try_me_else chains because app/nrev key on []/'.'(H,T).
  // With the structure side of the switch, every bound call lands in a
  // single-clause bucket: zero choice points.
  Load("app([], L, L).\n"
       "app([H|T], L, [H|R]) :- app(T, L, R).\n"
       "nrev([], []).\n"
       "nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n");
  CompileAll();
  std::string list = "[";
  for (int i = 1; i <= 30; ++i) {
    list += (i > 1 ? "," : "") + std::to_string(i);
  }
  uint64_t cps_before = emulator_->stats().choice_points;
  uint64_t miss_before = emulator_->stats().switch_miss_linear;
  EXPECT_EQ(Count("nrev(" + list + "], R)"), 1u);
  EXPECT_LE(emulator_->stats().choice_points - cps_before, 40u);
  EXPECT_EQ(emulator_->stats().switch_miss_linear - miss_before, 0u);
  EXPECT_GT(emulator_->stats().switch_structure_hits, 0u);
}

TEST_F(WamTest, IndexingOffForcesLinearChains) {
  // CompileOptions::index = false is the ablation baseline: same answers,
  // try_me_else chains instead of switches, and the miss counter shows it.
  Load("app([], L, L).\n"
       "app([H|T], L, [H|R]) :- app(T, L, R).\n");
  Result<CompiledModule> plain = CompileModule(&store_, program_, {});
  ASSERT_TRUE(plain.ok());
  CompileOptions off;
  off.index = false;
  Result<CompiledModule> linear = CompileModule(&store_, program_, {}, off);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(linear.value().switch_tables.size(), 0u);
  EXPECT_NE(linear.value().Disassemble(symbols_).find("try_me_else"),
            std::string::npos);

  Emulator indexed(&store_, &plain.value());
  Emulator chained(&store_, &linear.value());
  auto count_goal = [&](Emulator* emu, const char* goal) {
    size_t count = 0;
    size_t trail = store_.TrailMark();
    Status s = emu->Solve(Parse(goal), [&count]() {
      ++count;
      return WamAction::kContinue;
    });
    store_.UndoTrail(trail);
    EXPECT_TRUE(s.ok()) << goal;
    return count;
  };
  // Bound first argument: indexed dispatch never touches a linear chain,
  // the forced-linear module enters one per call.
  EXPECT_EQ(count_goal(&indexed, "app([1,2,3], [4], R)"), 1u);
  EXPECT_EQ(count_goal(&chained, "app([1,2,3], [4], R)"), 1u);
  EXPECT_EQ(indexed.stats().switch_miss_linear, 0u);
  EXPECT_GT(chained.stats().switch_miss_linear, 0u);
  // Unbound first argument: both degrade to a linear chain (counted), with
  // identical answers.
  EXPECT_EQ(count_goal(&indexed, "app(X, Y, [1,2,3])"), 4u);
  EXPECT_EQ(count_goal(&chained, "app(X, Y, [1,2,3])"), 4u);
  EXPECT_GT(indexed.stats().switch_miss_linear, 0u);
}

TEST_F(WamTest, HashEscalationAboveFanoutThreshold) {
  // SwitchTable escalates from linear scan to hash above kHashFanout keys;
  // both regimes must dispatch identically.
  std::string small = "s(f1(x), 1).\ns(f2(x), 2).\ns(f3(x), 3).\n";
  std::string big;
  for (int i = 0; i < 2 * static_cast<int>(SwitchTable::kHashFanout); ++i) {
    big += "b(g" + std::to_string(i) + "(x), " + std::to_string(i) + ").\n";
  }
  Load(small + big);
  CompileAll();
  ASSERT_EQ(module_.switch_tables.size(), 2u);
  bool saw_linear = false;
  bool saw_hashed = false;
  for (const SwitchTable& t : module_.switch_tables) {
    (t.hashed() ? saw_hashed : saw_linear) = true;
    EXPECT_EQ(t.hashed(), t.size() > SwitchTable::kHashFanout);
  }
  EXPECT_TRUE(saw_linear);
  EXPECT_TRUE(saw_hashed);
  EXPECT_EQ(First("s(f2(x), V)"), "s(f2(x),2)");
  EXPECT_EQ(First("b(g11(x), V)"), "b(g11(x),11)");
  EXPECT_FALSE(Holds("b(g99(x), V)"));
}

TEST_F(WamTest, RulesWithConjunctions) {
  Load("e(1,2). e(2,3). e(3,4).\n"
       "p2(X,Y) :- e(X,Z), e(Z,Y).\n"
       "p3(X,Y) :- e(X,Z), p2(Z,Y).\n");
  CompileAll();
  EXPECT_TRUE(Holds("p2(1,3)"));
  EXPECT_TRUE(Holds("p3(1,4)"));
  EXPECT_FALSE(Holds("p3(2,4)"));
  EXPECT_EQ(Count("p2(X,Y)"), 2u);
}

TEST_F(WamTest, RecursionOverLists) {
  Load("app([], L, L).\n"
       "app([H|T], L, [H|R]) :- app(T, L, R).\n");
  CompileAll();
  EXPECT_TRUE(Holds("app([1,2], [3], [1,2,3])"));
  EXPECT_FALSE(Holds("app([1,2], [3], [1,2,4])"));
  EXPECT_EQ(First("app([1,2], [3,4], R)"), "app([1,2],[3,4],[1,2,3,4])");
  EXPECT_EQ(Count("app(X, Y, [1,2,3])"), 4u);
}

TEST_F(WamTest, NestedStructuresInHeadsAndBodies) {
  Load("shape(point(X, Y), box(point(X, Y), point(X, Y))).\n"
       "wrap(A, f(g(A), h(A, k))).\n");
  CompileAll();
  EXPECT_TRUE(Holds("shape(point(1,2), box(point(1,2), point(1,2)))"));
  EXPECT_FALSE(Holds("shape(point(1,2), box(point(1,2), point(3,2)))"));
  EXPECT_EQ(First("wrap(a, T)"), "wrap(a,f(g(a),h(a,k)))");
  EXPECT_EQ(First("shape(P, box(point(7,8), Q))"),
            "shape(point(7,8),box(point(7,8),point(7,8)))");
}

TEST_F(WamTest, ArithmeticBuiltins) {
  Load("double(X, Y) :- Y is X * 2.\n"
       "bigger(X, Y) :- X > Y.\n"
       "range_ok(X) :- X >= 10, X =< 20.\n");
  CompileAll();
  EXPECT_EQ(First("double(21, Y)"), "double(21,42)");
  EXPECT_TRUE(Holds("bigger(5, 3)"));
  EXPECT_FALSE(Holds("bigger(3, 5)"));
  EXPECT_TRUE(Holds("range_ok(15)"));
  EXPECT_FALSE(Holds("range_ok(25)"));
}

TEST_F(WamTest, UnifyBuiltinAndSharedVariables) {
  Load("same(X, X).\n"
       "pair(X, Y, p(X, Y)) :- X = Y.\n");
  CompileAll();
  EXPECT_TRUE(Holds("same(a, a)"));
  EXPECT_FALSE(Holds("same(a, b)"));
  EXPECT_EQ(First("pair(q, Y, P)"), "pair(q,q,p(q,q))");
}

TEST_F(WamTest, DeepRecursionCountdown) {
  Load("count(0).\n"
       "count(N) :- N > 0, M is N - 1, count(M).\n");
  CompileAll();
  EXPECT_TRUE(Holds("count(20000)"));
}

TEST_F(WamTest, BacktrackingThroughDeallocatedFrames) {
  // q leaves a choice point; p deallocates before q's retry happens.
  Load("q(1). q(2).\n"
       "r(2).\n"
       "p(X) :- q(X), r(X).\n");
  CompileAll();
  EXPECT_EQ(Count("p(X)"), 1u);
  EXPECT_EQ(First("p(X)"), "p(2)");
}

TEST_F(WamTest, CompileErrorsAreReported) {
  Load(":- table t/1.\nt(1).\nuses_cut(X) :- q(X), !.\nq(1).\n");
  Result<CompiledModule> compiled = CompileModule(&store_, program_, {});
  EXPECT_FALSE(compiled.ok());
}

TEST_F(WamTest, DisassemblerProducesListing) {
  Load("e(1,2).\np(X,Y) :- e(X,Y).\n");
  CompileAll();
  std::string listing = module_.Disassemble(symbols_);
  EXPECT_NE(listing.find("p/2:"), std::string::npos);
  EXPECT_NE(listing.find("get_constant"), std::string::npos);
  EXPECT_NE(listing.find("call e/2"), std::string::npos);
  EXPECT_NE(listing.find("proceed"), std::string::npos);
}

TEST_F(WamTest, DisassembleRoundTripsEveryOpcode) {
  // Property: every opcode in the instruction set has a distinct, stable
  // disassembly. The case table below must stay exhaustive — the set-size
  // check fails when an opcode is added without a rendering here, and the
  // one-line-per-instruction check fails when Disassemble skips an op.
  CompiledModule m;
  FunctorId f2 = symbols_.InternFunctor(symbols_.InternAtom("f"), 2);
  uint32_t seven = static_cast<uint32_t>(m.AddConstant(IntCell(7)));
  m.switch_tables.emplace_back();
  m.mode_specs.push_back({kModeGround, kModeNonvar});
  struct Case {
    Instr instr;
    const char* text;
  };
  const Case cases[] = {
      {{Op::kGetVariable, XReg(4), 2, 0}, "get_variable X4, A2"},
      {{Op::kGetValue, YReg(1), 3, 0}, "get_value Y1, A3"},
      {{Op::kGetConstant, seven, 1, 0}, "get_constant 7, A1"},
      {{Op::kGetStructure, f2, 1, 0}, "get_structure f/2, A1"},
      {{Op::kUnifyVariable, XReg(5), 0, 0}, "unify_variable X5"},
      {{Op::kUnifyValue, YReg(2), 0, 0}, "unify_value Y2"},
      {{Op::kUnifyConstant, seven, 0, 0}, "unify_constant 7"},
      {{Op::kUnifyVoid, 3, 0, 0}, "unify_void 3"},
      {{Op::kPutVariable, YReg(0), 2, 0}, "put_variable Y0, A2"},
      {{Op::kPutValue, XReg(6), 1, 0}, "put_value X6, A1"},
      {{Op::kPutConstant, seven, 2, 0}, "put_constant 7, A2"},
      {{Op::kPutStructure, f2, 1, 0}, "put_structure f/2, A1"},
      {{Op::kAllocate, 4, 0, 0}, "allocate 4"},
      {{Op::kDeallocate, 0, 0, 0}, "deallocate"},
      {{Op::kCall, 0, f2, 0}, "call f/2"},
      {{Op::kProceed, 0, 0, 0}, "proceed"},
      {{Op::kTryMeElse, 9, 2, 0}, "try_me_else 9"},
      {{Op::kRetryMeElse, 11, 0, 0}, "retry_me_else 11"},
      {{Op::kTrustMe, 0, 0, 0}, "trust_me"},
      {{Op::kSwitchOnTerm, 1, 2, 3}, "switch_on_term var=1 const=2 struct=3"},
      {{Op::kSwitchOnConstant, 0, 0, 0}, "switch_on_constant table#0"},
      {{Op::kTry, 21, 2, 0}, "try 21"},
      {{Op::kRetry, 22, 0, 0}, "retry 22"},
      {{Op::kTrust, 23, 0, 0}, "trust 23"},
      {{Op::kBuiltin, 0, 2, 0}, "builtin #0/2"},
      {{Op::kSolution, 0, 0, 0}, "solution"},
      {{Op::kHalt, 0, 0, 0}, "halt"},
      {{Op::kCheckMode, 0, 2, 31}, "check_mode spec#0/2, generic=31"},
      {{Op::kGetConstantNv, seven, 1, 0}, "get_constant_nv 7, A1"},
      {{Op::kGetStructureRd, f2, 1, 0}, "get_structure_rd f/2, A1"},
      {{Op::kUnifyConstantRd, seven, 0, 0}, "unify_constant_rd 7"},
      {{Op::kSwitchOnStructure, 0, 0, 17},
       "switch_on_structure table#0 list=17"},
  };
  std::set<uint8_t> covered;
  for (const Case& c : cases) {
    covered.insert(static_cast<uint8_t>(c.instr.op));
    m.code.push_back(c.instr);
  }
  // Exhaustive: one case per enumerator, contiguous from zero.
  EXPECT_EQ(covered.size(), std::size(cases));
  EXPECT_EQ(*covered.rbegin(),
            static_cast<uint8_t>(Op::kSwitchOnStructure));
  EXPECT_EQ(covered.size(),
            static_cast<size_t>(*covered.rbegin()) + 1);

  std::string listing = m.Disassemble(symbols_);
  EXPECT_EQ(static_cast<size_t>(
                std::count(listing.begin(), listing.end(), '\n')),
            m.code.size());
  for (const Case& c : cases) {
    EXPECT_NE(listing.find(c.text), std::string::npos)
        << "missing disassembly: " << c.text << "\n"
        << listing;
  }
}

TEST_F(WamTest, AgreesWithInterpreterOnJoins) {
  // Property: WAM and the interpreter produce the same solution count.
  std::string facts;
  for (int i = 0; i < 60; ++i) {
    facts += "r(" + std::to_string(i % 10) + "," + std::to_string(i) + ").\n";
    facts += "s(" + std::to_string(i) + "," + std::to_string(i % 7) + ").\n";
  }
  Load(facts + "j(X,Z) :- r(X,Y), s(Y,Z).\n");
  CompileAll();
  xsb::Machine machine(&store_, &program_);
  for (int k = 0; k < 10; k += 3) {
    std::string goal = "j(" + std::to_string(k) + ", Z)";
    Result<size_t> interpreted = machine.CountSolutions(Parse(goal));
    ASSERT_TRUE(interpreted.ok());
    EXPECT_EQ(Count(goal), interpreted.value()) << goal;
  }
}

}  // namespace
}  // namespace xsb::wam
