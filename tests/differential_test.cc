// Differential testing harness: seeded random datalog programs evaluated by
// three independent engines in this repository —
//   1. tabled SLG resolution (the trie-backed table space),
//   2. bottom-up semi-naive evaluation,
//   3. bounded (depth-limited) SLD with answer deduplication —
// must produce identical answer sets. Any divergence pins a bug to one
// engine, since the three share no evaluation machinery: SLG runs on the
// Machine + Evaluator + AnswerTrie stack, bottom-up on Relation hash sets,
// and bounded SLD on the Machine alone with no tables at all.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

using AnswerSet = std::set<std::pair<std::string, std::string>>;

// A random digraph; shape varies with the seed so the sweep covers acyclic
// chains, strongly connected cycles, and arbitrary sparse digraphs.
struct RandomGraph {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;
};

RandomGraph MakeGraph(uint32_t seed) {
  std::mt19937 rng(seed);
  RandomGraph g;
  g.num_nodes = 5 + static_cast<int>(rng() % 5);  // 5..9 nodes
  int shape = seed % 3;
  std::set<std::pair<int, int>> edges;
  if (shape == 0) {
    // Chain 1 -> 2 -> ... -> n with a few random shortcut edges.
    for (int i = 1; i < g.num_nodes; ++i) edges.insert({i, i + 1});
    int extra = static_cast<int>(rng() % 3);
    for (int k = 0; k < extra; ++k) {
      int a = 1 + static_cast<int>(rng() % g.num_nodes);
      int b = 1 + static_cast<int>(rng() % g.num_nodes);
      edges.insert({a, b});
    }
  } else if (shape == 1) {
    // Cycle through all nodes plus random chords: every node reaches every
    // node, exercising duplicate-answer suppression hard.
    for (int i = 1; i <= g.num_nodes; ++i) {
      edges.insert({i, i % g.num_nodes + 1});
    }
    int chords = static_cast<int>(rng() % 3);
    for (int k = 0; k < chords; ++k) {
      int a = 1 + static_cast<int>(rng() % g.num_nodes);
      int b = 1 + static_cast<int>(rng() % g.num_nodes);
      edges.insert({a, b});
    }
  } else {
    // Sparse random digraph, average out-degree <= 2 (keeps the bounded-SLD
    // oracle's walk enumeration tractable).
    int num_edges = g.num_nodes + static_cast<int>(rng() % g.num_nodes);
    for (int k = 0; k < num_edges; ++k) {
      int a = 1 + static_cast<int>(rng() % g.num_nodes);
      int b = 1 + static_cast<int>(rng() % g.num_nodes);
      edges.insert({a, b});
    }
  }
  g.edges.assign(edges.begin(), edges.end());
  return g;
}

std::string EdgeFacts(const RandomGraph& g, const std::string& name) {
  std::string text;
  for (auto [a, b] : g.edges) {
    text += name + "(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  return text;
}

// Oracle 1: tabled SLG over the trie-backed table space.
AnswerSet SlgAnswers(const std::string& program, const std::string& query) {
  Engine engine;
  EXPECT_TRUE(engine.ConsultString(program).ok());
  AnswerSet result;
  EXPECT_TRUE(engine
                  .ForEach(query,
                           [&result](const Answer& a) {
                             result.insert({a["X"], a["Y"]});
                             return true;
                           })
                  .ok());
  return result;
}

// Oracle 2: bottom-up semi-naive evaluation to fixpoint.
AnswerSet BottomUpAnswers(const std::string& program, const std::string& pred) {
  datalog::DatalogProgram dl;
  EXPECT_TRUE(datalog::ParseDatalog(program, &dl).ok());
  datalog::Evaluation eval(&dl);
  EXPECT_TRUE(eval.Run().ok());
  AnswerSet result;
  datalog::PredId id = dl.InternPred(pred, 2);
  for (const datalog::Tuple& t : eval.relation(id).tuples()) {
    result.insert({dl.consts().ToString(t[0]), dl.consts().ToString(t[1])});
  }
  return result;
}

// Oracle 3: plain SLD with an explicit depth bound and set-based dedup.
// The bound is the node count: every minimal derivation fits, and the
// engine's duplicate walks collapse in the std::set.
AnswerSet BoundedSldAnswers(const std::string& program,
                            const std::string& query) {
  Engine engine;
  EXPECT_TRUE(engine.ConsultString(program).ok());
  AnswerSet result;
  EXPECT_TRUE(engine
                  .ForEach(query,
                           [&result](const Answer& a) {
                             result.insert({a["X"], a["Y"]});
                             return true;
                           })
                  .ok());
  return result;
}

class DifferentialReachability : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialReachability, ThreeEnginesAgree) {
  RandomGraph g = MakeGraph(GetParam());
  std::string edges = EdgeFacts(g, "edge");
  std::string depth = std::to_string(g.num_nodes);

  AnswerSet slg = SlgAnswers(
      ":- table path/2.\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges,
      "path(X, Y)");

  AnswerSet bottom_up = BottomUpAnswers(
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n" + edges,
      "path");

  AnswerSet sld = BoundedSldAnswers(
      "bpath(X,Y,D) :- D > 0, edge(X,Y).\n"
      "bpath(X,Y,D) :- D > 0, D1 is D - 1, edge(X,Z), bpath(Z,Y,D1).\n" +
          edges,
      "bpath(X, Y, " + depth + ")");

  EXPECT_EQ(slg, bottom_up) << "seed " << GetParam();
  EXPECT_EQ(slg, sld) << "seed " << GetParam();
  // Sanity: random graphs always have at least their edges as paths.
  EXPECT_GE(slg.size(), g.edges.size() > 0 ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialReachability,
                         ::testing::Range(0u, 51u));

// --- Same generation over random forests ------------------------------------

// A random forest: node 1 (and a few other roots) have no parent; every
// other node's parent is a random earlier node.
std::string ForestFacts(uint32_t seed, int* num_nodes) {
  std::mt19937 rng(seed * 2654435761u + 1);
  int n = 6 + static_cast<int>(rng() % 6);  // 6..11 nodes
  *num_nodes = n;
  std::string text;
  for (int i = 2; i <= n; ++i) {
    if (rng() % 5 == 0) continue;  // another root
    int parent = 1 + static_cast<int>(rng() % (i - 1));
    text += "par(" + std::to_string(parent) + "," + std::to_string(i) +
            ").\n";
  }
  return text;
}

class DifferentialSameGeneration
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialSameGeneration, ThreeEnginesAgree) {
  int n = 0;
  std::string facts = ForestFacts(GetParam(), &n);
  if (facts.empty()) return;  // degenerate forest: nothing to compare
  std::string depth = std::to_string(n);

  AnswerSet slg = SlgAnswers(
      ":- table sg/2.\n"
      "sg(X,Y) :- par(P,X), par(P,Y).\n"
      "sg(X,Y) :- par(XP,X), par(YP,Y), sg(XP,YP).\n" + facts,
      "sg(X, Y)");

  AnswerSet bottom_up = BottomUpAnswers(
      "sg(X,Y) :- par(P,X), par(P,Y).\n"
      "sg(X,Y) :- par(XP,X), par(YP,Y), sg(XP,YP).\n" + facts,
      "sg");

  AnswerSet sld = BoundedSldAnswers(
      "bsg(X,Y,D) :- D > 0, par(P,X), par(P,Y).\n"
      "bsg(X,Y,D) :- D > 0, D1 is D - 1, par(XP,X), par(YP,Y), "
      "bsg(XP,YP,D1).\n" + facts,
      "bsg(X, Y, " + depth + ")");

  EXPECT_EQ(slg, bottom_up) << "seed " << GetParam();
  EXPECT_EQ(slg, sld) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSameGeneration,
                         ::testing::Range(0u, 51u));

}  // namespace
}  // namespace xsb
