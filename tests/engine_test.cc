#include <gtest/gtest.h>

#include "db/loader.h"
#include "engine/machine.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "term/store.h"

namespace xsb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : store_(&symbols_),
        program_(&symbols_),
        loader_(&store_, &program_),
        machine_(&store_, &program_) {}

  void Load(const std::string& text) {
    Status s = loader_.ConsultString(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Word Parse(const std::string& text) {
    std::string buffer = text + " .";
    Reader reader(&store_, program_.ops(), buffer, program_.hilog_atoms());
    Result<Word> r = reader.ReadClause();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  size_t Count(const std::string& goal) {
    Result<size_t> r = machine_.CountSolutions(Parse(goal));
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() ? r.value() : 0;
  }

  bool Holds(const std::string& goal) {
    size_t trail = store_.TrailMark();
    Result<bool> r = machine_.SolveOnce(Parse(goal));
    store_.UndoTrail(trail);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() && r.value();
  }

  // All solutions of `goal` projected on the instance of `templ`, rendered.
  std::vector<std::string> Answers(const std::string& templ,
                                   const std::string& goal) {
    // Parse both in one term so variables are shared.
    Word pair = Parse("'$pair'(" + templ + "," + goal + ")");
    Word t = store_.Arg(store_.Deref(pair), 0);
    Word g = store_.Arg(store_.Deref(pair), 1);
    Result<std::vector<FlatTerm>> r = machine_.FindAll(t, g);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    std::vector<std::string> out;
    if (!r.ok()) return out;
    WriteOptions options;
    options.use_operators = false;
    for (const FlatTerm& flat : r.value()) {
      out.push_back(WriteFlat(&store_, *program_.ops(), flat, options));
    }
    return out;
  }

  Status SolveStatus(const std::string& goal) {
    return machine_.Solve(Parse(goal),
                          []() { return SolveAction::kContinue; });
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
  Loader loader_;
  Machine machine_;
};

TEST_F(EngineTest, FactsAndConjunction) {
  Load("edge(1,2). edge(2,3). edge(1,3).\n");
  EXPECT_TRUE(Holds("edge(1,2)"));
  EXPECT_FALSE(Holds("edge(2,1)"));
  EXPECT_EQ(Count("edge(1,X)"), 2u);
  EXPECT_EQ(Count("edge(X,Y)"), 3u);
  EXPECT_EQ(Count("edge(1,X), edge(X,3)"), 1u);
}

TEST_F(EngineTest, RulesChainBindings) {
  Load("edge(1,2). edge(2,3). path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n");
  EXPECT_EQ(Count("path(1,X)"), 2u);
  EXPECT_EQ(Answers("X", "path(1,X)"),
            (std::vector<std::string>{"2", "3"}));
}

TEST_F(EngineTest, SolutionOrderIsDepthFirst) {
  Load("color(red). color(green). color(blue).\n");
  EXPECT_EQ(Answers("C", "color(C)"),
            (std::vector<std::string>{"red", "green", "blue"}));
}

TEST_F(EngineTest, CutPrunesAlternatives) {
  Load("first(X) :- member_(X, [a,b,c]), !.\n"
       "member_(X, [X|_]). member_(X, [_|T]) :- member_(X, T).\n");
  EXPECT_EQ(Count("first(X)"), 1u);
  EXPECT_EQ(Answers("X", "first(X)"), (std::vector<std::string>{"a"}));
}

TEST_F(EngineTest, TransformNullPaperExample) {
  // The section 4.4 cut example.
  Load("transform_null(null, 'date unknown') :- !.\n"
       "transform_null(X, X).\n");
  EXPECT_EQ(Answers("Y", "transform_null(null, Y)"),
            (std::vector<std::string>{"'date unknown'"}));
  EXPECT_EQ(Answers("Y", "transform_null(1987, Y)"),
            (std::vector<std::string>{"1987"}));
  EXPECT_EQ(Count("transform_null(null, Y)"), 1u);
}

TEST_F(EngineTest, NotPPaperExample) {
  // The section 4.4 not_p example built from cut and fail.
  Load("p(a,b). p(c,d).\n"
       "not_p(X,Y) :- p(X,Y), !, fail.\n"
       "not_p(_,_).\n");
  EXPECT_FALSE(Holds("not_p(a,b)"));
  EXPECT_TRUE(Holds("not_p(a,c)"));
}

TEST_F(EngineTest, CutIsLocalToTheClause) {
  Load("q(1). q(2). r(X) :- q(X), !. top(X, Y) :- r(X), q(Y).\n");
  // The cut in r/1 must not prune q(Y) alternatives in top/2.
  EXPECT_EQ(Count("top(X, Y)"), 2u);
}

TEST_F(EngineTest, NegationAsFailure) {
  Load("p(1). p(2). q(2). safe(X) :- p(X), \\+ q(X).\n");
  EXPECT_EQ(Answers("X", "safe(X)"), (std::vector<std::string>{"1"}));
  EXPECT_TRUE(Holds("\\+ p(3)"));
  EXPECT_FALSE(Holds("\\+ p(1)"));
}

TEST_F(EngineTest, NegationLeavesNoBindings) {
  Load("p(1).\n");
  // \+ p(X) fails, but X must stay unbound for the subsequent goal.
  EXPECT_TRUE(Holds("\\+ \\+ p(X), X = 7"));
}

TEST_F(EngineTest, IfThenElse) {
  Load("classify(X, small) :- (X < 10 -> true ; fail).\n"
       "abs_(X, Y) :- (X < 0 -> Y is -X ; Y = X).\n");
  EXPECT_TRUE(Holds("classify(5, small)"));
  EXPECT_FALSE(Holds("classify(15, small)"));
  EXPECT_EQ(Answers("Y", "abs_(-3, Y)"), (std::vector<std::string>{"3"}));
  EXPECT_EQ(Answers("Y", "abs_(4, Y)"), (std::vector<std::string>{"4"}));
  // The condition is committed: only one solution even if it could retry.
  Load("pick(X) :- (member_(X, [1,2,3]) -> true ; X = none).\n"
       "member_(X, [X|_]). member_(X, [_|T]) :- member_(X, T).\n");
  EXPECT_EQ(Count("pick(X)"), 1u);
}

TEST_F(EngineTest, Disjunction) {
  Load("d(X) :- (X = 1 ; X = 2 ; X = 3).\n");
  EXPECT_EQ(Answers("X", "d(X)"), (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(EngineTest, Arithmetic) {
  EXPECT_TRUE(Holds("X is 2 + 3 * 4, X =:= 14"));
  EXPECT_TRUE(Holds("X is 7 // 2, X =:= 3"));
  EXPECT_TRUE(Holds("X is -7 mod 3, X =:= 2"));
  EXPECT_TRUE(Holds("X is min(3, 5), X =:= 3"));
  EXPECT_TRUE(Holds("X is abs(-9), X =:= 9"));
  EXPECT_TRUE(Holds("X is 2 ** 10, X =:= 1024"));
  EXPECT_TRUE(Holds("3 < 4, 4 =< 4, 5 > 2, 2 >= 2, 3 =\\= 4"));
  EXPECT_FALSE(Holds("1 > 2"));
}

TEST_F(EngineTest, ArithmeticErrors) {
  EXPECT_FALSE(SolveStatus("X is Y + 1").ok());
  EXPECT_FALSE(SolveStatus("X is 1 // 0").ok());
  EXPECT_FALSE(SolveStatus("X is foo + 1").ok());
}

TEST_F(EngineTest, UnificationBuiltins) {
  EXPECT_TRUE(Holds("X = f(Y), X = f(3), Y =:= 3"));
  EXPECT_TRUE(Holds("f(X) \\= g(X)"));
  EXPECT_FALSE(Holds("X \\= Y"));
  EXPECT_TRUE(Holds("X == X"));
  EXPECT_FALSE(Holds("X == Y"));
  EXPECT_TRUE(Holds("f(a) == f(a)"));
  EXPECT_TRUE(Holds("f(a) \\== f(b)"));
}

TEST_F(EngineTest, TypeTests) {
  EXPECT_TRUE(Holds("atom(foo)"));
  EXPECT_FALSE(Holds("atom(f(x))"));
  EXPECT_TRUE(Holds("number(42)"));
  EXPECT_TRUE(Holds("compound(f(x))"));
  EXPECT_TRUE(Holds("var(X)"));
  EXPECT_TRUE(Holds("X = 1, nonvar(X)"));
  EXPECT_TRUE(Holds("ground(f(a,1))"));
  EXPECT_FALSE(Holds("ground(f(a,X))"));
}

TEST_F(EngineTest, TermInspection) {
  EXPECT_TRUE(Holds("functor(f(a,b), f, 2)"));
  EXPECT_TRUE(Holds("functor(T, f, 2), T = f(_, _)"));
  EXPECT_TRUE(Holds("functor(foo, foo, 0)"));
  EXPECT_TRUE(Holds("arg(1, f(a,b), a)"));
  EXPECT_TRUE(Holds("arg(2, f(a,b), X), X == b"));
  EXPECT_FALSE(Holds("arg(3, f(a,b), _)"));
  EXPECT_TRUE(Holds("f(a,b) =.. [f,a,b]"));
  EXPECT_TRUE(Holds("T =.. [g,1], T == g(1)"));
  EXPECT_TRUE(Holds("copy_term(f(X,X,Y), C), C = f(1,Z,2), Z == 1"));
}

TEST_F(EngineTest, FindallCollectsAll) {
  Load("n(1). n(2). n(3).\n");
  EXPECT_TRUE(Holds("findall(X, n(X), [1,2,3])"));
  EXPECT_TRUE(Holds("findall(X, n(X), L), length(L, 3)"));
  EXPECT_TRUE(Holds("findall(f(X), fail, [])"));
}

TEST_F(EngineTest, Between) {
  EXPECT_EQ(Count("between(1, 5, X)"), 5u);
  EXPECT_TRUE(Holds("between(1, 5, 3)"));
  EXPECT_FALSE(Holds("between(1, 5, 9)"));
  EXPECT_EQ(Count("between(3, 2, X)"), 0u);
}

TEST_F(EngineTest, Length) {
  EXPECT_TRUE(Holds("length([a,b,c], 3)"));
  EXPECT_TRUE(Holds("length(L, 2), L = [x,y]"));
  EXPECT_FALSE(Holds("length([a], 2)"));
}

TEST_F(EngineTest, CallAndOnce) {
  Load("m(1). m(2).\n");
  EXPECT_EQ(Count("call(m, X)"), 2u);
  EXPECT_EQ(Count("G = m(X), call(G)"), 2u);
  EXPECT_EQ(Count("once(m(X))"), 1u);
  EXPECT_TRUE(Holds("once((m(X), X > 1))"));
}

TEST_F(EngineTest, AssertRetractDynamics) {
  Load(":- dynamic(counter/1). counter(0).\n");
  EXPECT_TRUE(Holds("retract(counter(0)), assert(counter(1))"));
  EXPECT_TRUE(Holds("counter(1)"));
  EXPECT_FALSE(Holds("counter(0)"));
  EXPECT_TRUE(Holds("assert(counter(2))"));
  EXPECT_EQ(Count("counter(X)"), 2u);
  EXPECT_TRUE(Holds("retractall(counter(_))"));
  EXPECT_EQ(Count("counter(X)"), 0u);
}

TEST_F(EngineTest, AssertaOrdersFirst) {
  Load("v(1).\n");
  EXPECT_TRUE(Holds("asserta(v(0))"));
  EXPECT_EQ(Answers("X", "v(X)"), (std::vector<std::string>{"0", "1"}));
}

TEST_F(EngineTest, RetractRules) {
  Load("w(X) :- X = 1. w(X) :- X = 2.\n");
  EXPECT_TRUE(Holds("retract((w(X) :- X = 1))"));
  EXPECT_EQ(Count("w(X)"), 1u);
}

TEST_F(EngineTest, UnknownPredicateIsAnError) {
  Status s = SolveStatus("no_such_pred(1)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kExistence);
}

TEST_F(EngineTest, CallToVariableIsInstantiationError) {
  Status s = SolveStatus("call(X)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInstantiation);
}

TEST_F(EngineTest, ListProgramsAppendNaive) {
  Load("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n");
  EXPECT_TRUE(Holds("app([1,2], [3], [1,2,3])"));
  EXPECT_EQ(Count("app(X, Y, [1,2,3])"), 4u);  // all splits
  EXPECT_EQ(Answers("X", "app([1], [2], X)"),
            (std::vector<std::string>{"[1,2]"}));
}

TEST_F(EngineTest, NaiveReverse) {
  Load("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).\n"
       "rev([], []). rev([H|T], R) :- rev(T, RT), app(RT, [H], R).\n");
  EXPECT_TRUE(Holds("rev([1,2,3,4], [4,3,2,1])"));
}

TEST_F(EngineTest, DeepRecursionChain) {
  // 2000-long chain: stresses goal stack and heap watermarks.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + "). ";
  }
  text += "reach(X,Y) :- e(X,Y). reach(X,Y) :- e(X,Z), reach(Z,Y).\n";
  Load(text);
  EXPECT_TRUE(Holds("reach(0, 2000)"));
  EXPECT_EQ(Count("reach(0, X)"), 2000u);
}

TEST_F(EngineTest, HiLogRuntimeDispatchToFirstOrder) {
  Load("parent(john, mary). parent(mary, sue).\n"
       "holds(R, X, Y) :- R(X, Y).\n");  // R(X,Y) reads as apply(R,X,Y)
  EXPECT_TRUE(Holds("holds(parent, john, mary)"));
  EXPECT_EQ(Count("holds(parent, X, Y)"), 2u);
}

TEST_F(EngineTest, HiLogDefinedPredicates) {
  Load(":- hilog maps.\n"
       "maps(double)(X, Y) :- Y is X * 2.\n"
       "maps(square)(X, Y) :- Y is X * X.\n");
  EXPECT_EQ(Answers("Y", "maps(double)(4, Y)"),
            (std::vector<std::string>{"8"}));
  EXPECT_EQ(Answers("Y", "maps(square)(4, Y)"),
            (std::vector<std::string>{"16"}));
}

TEST_F(EngineTest, StatsCountCalls) {
  Load("b(1). b(2). a :- b(_), fail. a.\n");
  machine_.set_counted_functor(
      symbols_.InternFunctor(symbols_.InternAtom("b"), 1));
  EXPECT_TRUE(Holds("a"));
  EXPECT_EQ(machine_.stats().counted_calls, 1u);
}

TEST_F(EngineTest, TableAllTablesCyclicPredicates) {
  Load(":- table_all.\n"
       "edge(1,2).\n"
       "tc(X,Y) :- edge(X,Y).\n"
       "tc(X,Y) :- tc(X,Z), edge(Z,Y).\n"
       "leaf(X) :- edge(X, _).\n");
  Predicate* tc =
      program_.Lookup(symbols_.InternFunctor(symbols_.InternAtom("tc"), 2));
  Predicate* leaf = program_.Lookup(
      symbols_.InternFunctor(symbols_.InternAtom("leaf"), 1));
  Predicate* edge = program_.Lookup(
      symbols_.InternFunctor(symbols_.InternAtom("edge"), 2));
  ASSERT_NE(tc, nullptr);
  EXPECT_TRUE(tc->tabled());
  EXPECT_FALSE(leaf->tabled());
  EXPECT_FALSE(edge->tabled());
}

TEST_F(EngineTest, TableAllHandlesMutualRecursion) {
  Load(":- table_all.\n"
       "even(0). even(X) :- X > 0, Y is X - 1, odd(Y).\n"
       "odd(X) :- X > 0, Y is X - 1, even(Y).\n");
  Predicate* even = program_.Lookup(
      symbols_.InternFunctor(symbols_.InternAtom("even"), 1));
  Predicate* odd =
      program_.Lookup(symbols_.InternFunctor(symbols_.InternAtom("odd"), 1));
  EXPECT_TRUE(even->tabled());
  EXPECT_TRUE(odd->tabled());
}

TEST_F(EngineTest, FormattedLoadParsesFieldsAndIndexes) {
  std::istringstream in("1,a\n2,b\n3,c\n");
  Result<size_t> n = loader_.LoadFactsFormatted(in, "row", 2);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_TRUE(Holds("row(2, b)"));
  EXPECT_EQ(Count("row(X, Y)"), 3u);
  EXPECT_EQ(Count("row(2, Y)"), 1u);
}

}  // namespace
}  // namespace xsb
