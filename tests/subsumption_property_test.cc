// Property and differential testing for answer subsumption (tier 2).
//
// Part 1 — algebraic properties over seeded random fact streams:
//   * min/max tables are insertion-order insensitive (lattice joins are
//     commutative and associative),
//   * re-deriving the same answers is idempotent (duplicated facts change
//     nothing),
//   * first(N) tables never exceed N answers per key and only ever contain
//     answers that were actually derived.
//
// Part 2 — a 51-seed random weighted digraph sweep: shortest path (min
// lattice) and widest path (max lattice) computed by three independent
// engines — SLG with in-trie subsumption, bottom-up semi-naive with the
// same lattices, and a naive all-answers enumeration post-filtered in C++ —
// must agree exactly. The engines share no evaluation machinery, so any
// divergence pins a bug to one of them.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bottomup/seminaive.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

// key (from, to) -> best cost, all rendered as strings.
using BestMap = std::map<std::pair<std::string, std::string>, int64_t>;

// --- Random weighted digraphs ------------------------------------------------

struct WeightedGraph {
  int num_nodes = 0;
  // (from, to) -> weight; at most one edge per ordered pair.
  std::map<std::pair<int, int>, int> edges;
};

WeightedGraph MakeGraph(uint32_t seed) {
  std::mt19937 rng(seed);
  WeightedGraph g;
  g.num_nodes = 5 + static_cast<int>(rng() % 4);  // 5..8 nodes
  int shape = seed % 3;
  auto add_edge = [&](int a, int b) {
    g.edges.try_emplace({a, b}, 1 + static_cast<int>(rng() % 9));
  };
  if (shape == 0) {
    // Chain with random shortcuts: shortest paths have nontrivial structure.
    for (int i = 1; i < g.num_nodes; ++i) add_edge(i, i + 1);
    for (int k = 0; k < 3; ++k) {
      add_edge(1 + static_cast<int>(rng() % g.num_nodes),
               1 + static_cast<int>(rng() % g.num_nodes));
    }
  } else if (shape == 1) {
    // Full cycle plus chords: every pair connected, replacement-heavy.
    for (int i = 1; i <= g.num_nodes; ++i) add_edge(i, i % g.num_nodes + 1);
    for (int k = 0; k < 2; ++k) {
      add_edge(1 + static_cast<int>(rng() % g.num_nodes),
               1 + static_cast<int>(rng() % g.num_nodes));
    }
  } else {
    // Sparse random digraph (self-loops possible and harmless).
    int num_edges = g.num_nodes + static_cast<int>(rng() % g.num_nodes);
    for (int k = 0; k < num_edges; ++k) {
      add_edge(1 + static_cast<int>(rng() % g.num_nodes),
               1 + static_cast<int>(rng() % g.num_nodes));
    }
  }
  return g;
}

std::string EdgeFacts(const WeightedGraph& g) {
  std::string text;
  for (const auto& [pair, w] : g.edges) {
    text += "edge(" + std::to_string(pair.first) + "," +
            std::to_string(pair.second) + "," + std::to_string(w) + ").\n";
  }
  return text;
}

// --- Oracle 1: SLG with in-trie answer subsumption ---------------------------

// kind: "min" with cost C1 + C2 (shortest path) or "max" with bottleneck
// min(W1, W2) (widest path).
std::string SlgProgram(const WeightedGraph& g, const std::string& kind) {
  std::string combine = kind == "min" ? "C is C1 + C2" : "C is min(C1, C2)";
  return ":- table best(_, _, " + kind + ").\n" +
         "best(X, Y, C) :- edge(X, Y, C).\n" +
         "best(X, Y, C) :- best(X, Z, C1), edge(Z, Y, C2), " + combine +
         ".\n" + EdgeFacts(g);
}

BestMap SlgBest(const WeightedGraph& g, const std::string& kind) {
  Engine engine;
  EXPECT_TRUE(engine.ConsultString(SlgProgram(g, kind)).ok());
  BestMap best;
  Status s = engine.ForEach("best(X, Y, C)", [&](const Answer& a) {
    auto [it, inserted] =
        best.try_emplace({a["X"], a["Y"]}, std::stoll(a["C"]));
    EXPECT_TRUE(inserted) << "two live answers for (" << a["X"] << ", "
                          << a["Y"] << ")";
    return true;
  });
  EXPECT_TRUE(s.ok()) << s.message();
  return best;
}

// --- Oracle 2: bottom-up semi-naive with the same lattices -------------------

BestMap BottomUpBest(const WeightedGraph& g, const std::string& kind) {
  std::string combine =
      kind == "min" ? "add(C1, C2, C)" : "min(C1, C2, C)";
  std::string text = "lattice(best, 3, 3, " + kind + ").\n" +
                     "best(X, Y, C) :- edge(X, Y, C).\n" +
                     "best(X, Y, C) :- best(X, Z, C1), edge(Z, Y, C2), " +
                     combine + ".\n" + EdgeFacts(g);
  datalog::DatalogProgram dl;
  EXPECT_TRUE(datalog::ParseDatalog(text, &dl).ok());
  datalog::Evaluation eval(&dl);
  EXPECT_TRUE(eval.Run().ok());
  BestMap best;
  datalog::PredId id = dl.InternPred("best", 3);
  datalog::Relation& rel = eval.relation(id);
  for (uint32_t row = 0; row < rel.tuples().size(); ++row) {
    if (rel.IsDead(row)) continue;  // tombstoned by a lattice replacement
    const datalog::Tuple& t = rel.tuples()[row];
    auto [it, inserted] = best.try_emplace(
        {dl.consts().ToString(t[0]), dl.consts().ToString(t[1])},
        dl.consts().IntOf(t[2]));
    EXPECT_TRUE(inserted) << "two live tuples for one key";
  }
  return best;
}

// --- Oracle 3: naive all-answers enumeration, post-filtered ------------------

// Enumerates every walk of at most `depth` edges with plain SLD (no tables,
// no subsumption) and aggregates in C++. With positive weights the best
// walk is a simple path, so depth = num_nodes covers the optimum.
BestMap NaiveBest(const WeightedGraph& g, const std::string& kind) {
  std::string combine = kind == "min" ? "C is C1 + C2" : "C is min(C1, C2)";
  std::string program =
      "walk(X, Y, C, s(_)) :- edge(X, Y, C).\n"
      "walk(X, Y, C, s(D)) :- edge(X, Z, C1), walk(Z, Y, C2, D), " + combine +
      ".\n" + EdgeFacts(g);
  std::string depth = "0";
  for (int i = 0; i < g.num_nodes; ++i) depth = "s(" + depth + ")";
  Engine engine;
  EXPECT_TRUE(engine.ConsultString(program).ok());
  BestMap best;
  Status s = engine.ForEach(
      "walk(X, Y, C, " + depth + ")", [&](const Answer& a) {
        int64_t c = std::stoll(a["C"]);
        auto [it, inserted] = best.try_emplace({a["X"], a["Y"]}, c);
        if (!inserted) {
          it->second = kind == "min" ? std::min(it->second, c)
                                     : std::max(it->second, c);
        }
        return true;
      });
  EXPECT_TRUE(s.ok()) << s.message();
  return best;
}

// --- The 51-seed sweep -------------------------------------------------------

TEST(SubsumptionDifferential, ShortestAndWidestPathsAgreeAcrossEngines) {
  for (uint32_t seed = 0; seed < 51; ++seed) {
    WeightedGraph g = MakeGraph(seed);
    for (const std::string& kind : {"min", "max"}) {
      BestMap slg = SlgBest(g, kind);
      BestMap bottom_up = BottomUpBest(g, kind);
      BestMap naive = NaiveBest(g, kind);
      EXPECT_EQ(slg, naive) << "SLG vs naive, seed " << seed << " " << kind;
      EXPECT_EQ(bottom_up, naive)
          << "bottom-up vs naive, seed " << seed << " " << kind;
    }
  }
}

// --- Algebraic properties over random streams --------------------------------

// Consults the same weighted edges in a shuffled order; the lattice result
// must not depend on insertion order.
TEST(SubsumptionProperty, MinMaxAreInsertionOrderInsensitive) {
  for (uint32_t seed = 100; seed < 120; ++seed) {
    WeightedGraph g = MakeGraph(seed);
    std::vector<std::string> facts;
    for (const auto& [pair, w] : g.edges) {
      facts.push_back("edge(" + std::to_string(pair.first) + "," +
                      std::to_string(pair.second) + "," + std::to_string(w) +
                      ").\n");
    }
    std::mt19937 rng(seed * 7 + 1);
    for (const std::string& kind : {"min", "max"}) {
      BestMap reference = SlgBest(g, kind);
      for (int shuffle = 0; shuffle < 3; ++shuffle) {
        std::shuffle(facts.begin(), facts.end(), rng);
        std::string program =
            ":- table best(_, _, " + kind + ").\n" +
            "best(X, Y, C) :- edge(X, Y, C).\n" +
            "best(X, Y, C) :- best(X, Z, C1), edge(Z, Y, C2), " +
            (kind == "min" ? std::string("C is C1 + C2")
                           : std::string("C is min(C1, C2)")) +
            ".\n";
        for (const std::string& f : facts) program += f;
        Engine engine;
        ASSERT_TRUE(engine.ConsultString(program).ok());
        BestMap got;
        ASSERT_TRUE(engine
                        .ForEach("best(X, Y, C)",
                                 [&](const Answer& a) {
                                   got[{a["X"], a["Y"]}] = std::stoll(a["C"]);
                                   return true;
                                 })
                        .ok());
        EXPECT_EQ(got, reference)
            << "seed " << seed << " shuffle " << shuffle << " " << kind;
      }
    }
  }
}

// Duplicating every fact (re-deriving every answer twice) changes nothing.
TEST(SubsumptionProperty, ReDerivationIsIdempotent) {
  for (uint32_t seed = 200; seed < 215; ++seed) {
    WeightedGraph g = MakeGraph(seed);
    BestMap reference = SlgBest(g, "min");
    std::string program = SlgProgram(g, "min") + EdgeFacts(g);
    Engine engine;
    ASSERT_TRUE(engine.ConsultString(program).ok());
    BestMap got;
    ASSERT_TRUE(engine
                    .ForEach("best(X, Y, C)",
                             [&](const Answer& a) {
                               auto [it, inserted] = got.try_emplace(
                                   {a["X"], a["Y"]}, std::stoll(a["C"]));
                               EXPECT_TRUE(inserted);
                               return true;
                             })
                    .ok());
    EXPECT_EQ(got, reference) << "seed " << seed;
  }
}

// first(N) keeps at most N answers per key, and only answers that were in
// the derived stream.
TEST(SubsumptionProperty, FirstNBoundsCardinalityPerKey) {
  for (uint32_t seed = 300; seed < 320; ++seed) {
    std::mt19937 rng(seed);
    int n = 1 + static_cast<int>(rng() % 3);  // first(1..3)
    int num_keys = 2 + static_cast<int>(rng() % 3);
    int stream_len = 8 + static_cast<int>(rng() % 8);
    std::map<int, std::vector<int>> stream;  // key -> values in order
    std::string program =
        ":- table fk(_, first(" + std::to_string(n) + ")).\n" +
        "fk(K, V) :- kv(K, V).\n";
    for (int i = 0; i < stream_len; ++i) {
      int k = 1 + static_cast<int>(rng() % num_keys);
      int v = 1 + static_cast<int>(rng() % 10);
      stream[k].push_back(v);
      program += "kv(" + std::to_string(k) + "," + std::to_string(v) + ").\n";
    }
    Engine engine;
    ASSERT_TRUE(engine.ConsultString(program).ok());
    std::map<int, std::vector<int>> kept;
    ASSERT_TRUE(engine
                    .ForEach("fk(K, V)",
                             [&](const Answer& a) {
                               kept[std::stoi(a["K"])].push_back(
                                   std::stoi(a["V"]));
                               return true;
                             })
                    .ok());
    for (auto& [k, values] : kept) {
      EXPECT_LE(values.size(), static_cast<size_t>(n)) << "seed " << seed;
      for (int v : values) {
        const std::vector<int>& derived = stream[k];
        EXPECT_NE(std::find(derived.begin(), derived.end(), v),
                  derived.end())
            << "seed " << seed << ": kept a value never derived";
      }
    }
    // Every key that produced answers keeps at least one.
    for (const auto& [k, derived] : stream) {
      EXPECT_FALSE(kept[k].empty()) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace xsb
