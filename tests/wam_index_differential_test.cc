// Property sweep for first-argument indexing (ISSUE 10): seeded random
// predicates whose clauses mix constant, integer, structure, list, and
// variable first-argument keys are compiled twice — with the two-level
// switch_on_term/switch_on_constant/switch_on_structure dispatch, and with
// CompileOptions::index off (pure try_me_else chains) — and run on both WAM
// tiers. All four configurations must produce identical answers in
// identical (source clause) order: indexing may delete choice points and
// skip non-matching clauses, never change or reorder the answer relation.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "db/loader.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "wam/compile.h"
#include "wam/emulator.h"

namespace xsb::wam {
namespace {

struct RandomProgram {
  std::string text;
  std::vector<std::string> queries;
};

// A predicate p/2 with 4..13 clauses. First-argument keys are drawn from a
// pool that deliberately collides (bucket chains with >1 clause) and mixes
// key kinds (shared switch_on_term with both tables live). Variable-keyed
// clauses appear with low probability: one is enough to make the whole
// predicate unswitchable, so most seeds index and some degrade — both sides
// of the equivalence get coverage. Every clause grounds its arguments, so
// answers render identically regardless of heap layout.
RandomProgram MakeProgram(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };
  const char* atoms[] = {"a", "b", "c", "quux"};
  const char* functors[] = {"f", "g", "wrap"};

  RandomProgram out;
  int num_clauses = 4 + pick(10);
  std::vector<std::string> keys;
  for (int i = 0; i < num_clauses; ++i) {
    int kind = pick(12);
    std::string key;
    bool var_key = false;
    if (kind < 3) {
      key = atoms[pick(4)];
    } else if (kind < 5) {
      key = std::to_string(pick(4));
    } else if (kind < 8) {
      key = std::string(functors[pick(3)]) + "(" + std::to_string(pick(4)) +
            ")";
    } else if (kind < 9) {
      key = "g(" + std::string(atoms[pick(4)]) + ", " +
            std::to_string(pick(4)) + ")";
    } else if (kind < 10) {
      key = "[]";
    } else if (kind < 11) {
      key = "[" + std::to_string(pick(4)) + "]";
    } else {
      var_key = true;
    }
    if (var_key) {
      // Variable-keyed clause: defeats the switch, but still grounds the
      // answer so all configurations render the same bindings.
      out.text += "p(X, " + std::to_string(i) + ") :- X = " +
                  atoms[pick(4)] + ".\n";
      keys.push_back(atoms[pick(4)]);
    } else {
      out.text += "p(" + key + ", " + std::to_string(i) + ").\n";
      keys.push_back(key);
    }
  }
  // Indexed dispatch from compiled clause bodies, not just top-level goals.
  out.text += "drive(K, V) :- p(K, V).\n";
  out.text += "probe(V) :- p(" + keys[static_cast<size_t>(pick(num_clauses))] +
              ", V).\n";

  // Query mix: keys that exist (single- and multi-clause buckets), keys of
  // every kind that miss, and an open call that must walk the clauses in
  // source order on both the var arm and the linear chain.
  for (int q = 0; q < 3; ++q) {
    out.queries.push_back(
        "p(" + keys[static_cast<size_t>(pick(num_clauses))] + ", V)");
  }
  out.queries.push_back("p(nosuch, V)");
  out.queries.push_back("p(nosuch(9), V)");
  out.queries.push_back("p([8,8,8], V)");
  out.queries.push_back("p(77, V)");
  out.queries.push_back("p([], V)");
  out.queries.push_back("p(Q, V)");
  out.queries.push_back("drive(f(1), V)");
  out.queries.push_back("probe(V)");
  return out;
}

// All rendered solutions of `queries`, in derivation order, on one module
// configuration. Compilation and solving must succeed.
std::vector<std::string> RunConfig(const RandomProgram& rp, bool index,
                                   int64_t jit_threshold) {
  SymbolTable symbols;
  TermStore store(&symbols);
  Program prog(&symbols);
  Loader loader(&store, &prog);
  Status s = loader.ConsultString(rp.text);
  EXPECT_TRUE(s.ok()) << s.ToString();
  CompileOptions options;
  options.index = index;
  Result<CompiledModule> compiled = CompileModule(&store, prog, {}, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::vector<std::string> out;
  if (!compiled.ok()) return out;
  EmulatorOptions eopts;
  eopts.jit_threshold = jit_threshold;
  Emulator emulator(&store, &compiled.value(), eopts);
  for (const std::string& goal : rp.queries) {
    Result<Word> g = ParseTermString(&store, prog.ops(), goal);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    if (!g.ok()) continue;
    size_t trail = store.TrailMark();
    Status st = emulator.Solve(g.value(), [&] {
      out.push_back(goal + " -> " + WriteTerm(store, *prog.ops(), g.value()));
      return WamAction::kContinue;
    });
    store.UndoTrail(trail);
    EXPECT_TRUE(st.ok()) << goal << ": " << st.ToString();
  }
  return out;
}

class WamIndexDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WamIndexDifferentialTest, SwitchAndChainAgreeOnBothTiers) {
  RandomProgram rp = MakeProgram(GetParam());
  std::vector<std::string> chain = RunConfig(rp, /*index=*/false,
                                             /*jit_threshold=*/-1);
  std::vector<std::string> indexed = RunConfig(rp, /*index=*/true,
                                               /*jit_threshold=*/-1);
  EXPECT_EQ(chain, indexed) << "emulator: indexing changed answers\n"
                            << rp.text;
  std::vector<std::string> chain_jit = RunConfig(rp, /*index=*/false,
                                                 /*jit_threshold=*/0);
  std::vector<std::string> indexed_jit = RunConfig(rp, /*index=*/true,
                                                   /*jit_threshold=*/0);
  EXPECT_EQ(chain, chain_jit) << "jit: chain tier diverged\n" << rp.text;
  EXPECT_EQ(indexed, indexed_jit) << "jit: indexed tier diverged\n"
                                  << rp.text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WamIndexDifferentialTest,
                         ::testing::Range(0u, 51u));

}  // namespace
}  // namespace xsb::wam
