#include <gtest/gtest.h>

#include <algorithm>

#include "bottomup/magic.h"
#include "bottomup/rules.h"
#include "bottomup/seminaive.h"

namespace xsb::datalog {
namespace {

std::string ChainEdges(int n) {
  std::string text;
  for (int i = 1; i < n; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
  }
  return text;
}

constexpr char kTransitiveClosure[] =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n";

TEST(DatalogParse, FactsRulesAndNegation) {
  DatalogProgram program;
  Status s = ParseDatalog(
      "edge(1,2). label(a). p(X) :- edge(X,Y), not q(Y). q(2).", &program);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(program.rules().size(), 1u);
  EXPECT_EQ(program.rules()[0].body.size(), 2u);
  EXPECT_TRUE(program.rules()[0].body[1].negated);
}

TEST(DatalogParse, RejectsUnsafeRules) {
  DatalogProgram p1;
  EXPECT_FALSE(ParseDatalog("p(X) :- q(Y).", &p1).ok());
  DatalogProgram p2;
  EXPECT_FALSE(ParseDatalog("p(X) :- q(X), not r(Z).", &p2).ok());
}

TEST(DatalogEval, TransitiveClosureOnChain) {
  DatalogProgram program;
  ASSERT_TRUE(
      ParseDatalog(ChainEdges(6) + kTransitiveClosure, &program).ok());
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  PredId path = program.InternPred("path", 2);
  // 5+4+3+2+1 pairs.
  EXPECT_EQ(eval.relation(path).size(), 15u);
}

TEST(DatalogEval, TransitiveClosureOnCycleTerminates) {
  DatalogProgram program;
  std::string text = kTransitiveClosure;
  for (int i = 1; i <= 8; ++i) {
    text += "edge(" + std::to_string(i) + "," +
            std::to_string(i % 8 + 1) + ").\n";
  }
  ASSERT_TRUE(ParseDatalog(text, &program).ok());
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  PredId path = program.InternPred("path", 2);
  EXPECT_EQ(eval.relation(path).size(), 64u);  // all pairs on a cycle
}

TEST(DatalogEval, SelectFiltersByConstants) {
  DatalogProgram program;
  ASSERT_TRUE(
      ParseDatalog(ChainEdges(5) + kTransitiveClosure, &program).ok());
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  Result<Literal> query = ParseQuery("path(1, X)", &program);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(eval.Select(query.value()).size(), 4u);
}

TEST(DatalogEval, StratifiedNegation) {
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      "node(1). node(2). node(3). edge(1,2).\n"
      "reach(X) :- edge(1, X).\n"
      "reach(X) :- reach(Y), edge(Y, X).\n"
      "unreach(X) :- node(X), not reach(X).\n",
      &program).ok());
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  PredId unreach = program.InternPred("unreach", 1);
  EXPECT_EQ(eval.relation(unreach).size(), 2u);  // nodes 1 and 3
}

TEST(DatalogEval, NonStratifiedProgramRejected) {
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      "move(a,b). move(b,a).\n"
      "wins(X) :- move(X,Y), not wins(Y).\n",
      &program).ok());
  Evaluation eval(&program);
  Status s = eval.Run();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kStratification);
}

TEST(DatalogEval, WinOnTreeViaStratifiedLayers) {
  // win/lose on a DAG is stratified when expressed with an explicit depth
  // argument is overkill; instead check `wins` over a tree-shaped move
  // relation is rejected only when cyclic. A 2-level tree is stratified?
  // No: wins depends negatively on itself. Expect rejection.
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      "move(1,2). move(1,3).\n"
      "wins(X) :- move(X,Y), not wins(Y).\n",
      &program).ok());
  Evaluation eval(&program);
  EXPECT_FALSE(eval.Run().ok());  // stratification is syntactic
}

TEST(DatalogEval, SeminaiveAndNaiveAgree) {
  DatalogProgram p1, p2;
  std::string text = ChainEdges(20) + kTransitiveClosure;
  ASSERT_TRUE(ParseDatalog(text, &p1).ok());
  ASSERT_TRUE(ParseDatalog(text, &p2).ok());
  Evaluation semi(&p1), naive(&p2);
  EvalOptions naive_options;
  naive_options.seminaive = false;
  ASSERT_TRUE(semi.Run().ok());
  ASSERT_TRUE(naive.Run(naive_options).ok());
  PredId path1 = p1.InternPred("path", 2);
  PredId path2 = p2.InternPred("path", 2);
  EXPECT_EQ(semi.relation(path1).size(), naive.relation(path2).size());
  // Semi-naive does strictly less rule-firing work.
  EXPECT_LT(semi.stats().rule_firings, naive.stats().rule_firings);
}

TEST(DatalogMagic, RestrictsComputationToReachablePart) {
  // Two disconnected chains; magic from chain 1 must not touch chain 2.
  DatalogProgram plain, magic;
  std::string text = kTransitiveClosure;
  for (int i = 1; i < 50; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
    text += "edge(" + std::to_string(1000 + i) + "," +
            std::to_string(1001 + i) + ").\n";
  }
  ASSERT_TRUE(ParseDatalog(text, &plain).ok());
  ASSERT_TRUE(ParseDatalog(text, &magic).ok());

  Result<Literal> q_plain = ParseQuery("path(1, X)", &plain);
  Result<Literal> q_magic = ParseQuery("path(1, X)", &magic);
  ASSERT_TRUE(q_plain.ok());
  ASSERT_TRUE(q_magic.ok());

  Result<Literal> adorned = MagicRewrite(&magic, q_magic.value());
  ASSERT_TRUE(adorned.ok()) << adorned.status().ToString();

  Evaluation full(&plain), focused(&magic);
  ASSERT_TRUE(full.Run().ok());
  ASSERT_TRUE(focused.Run().ok());

  auto full_answers = full.Select(q_plain.value());
  auto magic_answers = focused.Select(adorned.value());
  EXPECT_EQ(full_answers.size(), 49u);
  EXPECT_EQ(magic_answers.size(), 49u);
  // Magic derives far fewer tuples overall (only the chain-1 part).
  EXPECT_LT(focused.stats().tuples_inserted,
            full.stats().tuples_inserted / 2);
}

TEST(DatalogMagic, AnswersMatchPlainEvaluationOnRandomDag) {
  DatalogProgram plain, magic;
  std::string text = kTransitiveClosure;
  for (int i = 0; i < 15; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
    if (i % 3 == 0) {
      text += "edge(" + std::to_string(i) + "," + std::to_string(i + 3) +
              ").\n";
    }
  }
  ASSERT_TRUE(ParseDatalog(text, &plain).ok());
  ASSERT_TRUE(ParseDatalog(text, &magic).ok());
  Result<Literal> q_plain = ParseQuery("path(3, X)", &plain);
  Result<Literal> q_magic = ParseQuery("path(3, X)", &magic);
  Result<Literal> adorned = MagicRewrite(&magic, q_magic.value());
  ASSERT_TRUE(adorned.ok());
  Evaluation full(&plain), focused(&magic);
  ASSERT_TRUE(full.Run().ok());
  ASSERT_TRUE(focused.Run().ok());
  auto a = full.Select(q_plain.value());
  auto b = focused.Select(adorned.value());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(DatalogMagic, RightRecursionRewrites) {
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      ChainEdges(10) +
      "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n",
      &program).ok());
  Result<Literal> query = ParseQuery("path(2, X)", &program);
  Result<Literal> adorned = MagicRewrite(&program, query.value());
  ASSERT_TRUE(adorned.ok());
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  EXPECT_EQ(eval.Select(adorned.value()).size(), 8u);
}

TEST(DatalogFactoring, LeftLinearTcFactorsToUnary) {
  DatalogProgram program;
  ASSERT_TRUE(
      ParseDatalog(ChainEdges(30) + kTransitiveClosure, &program).ok());
  Result<Literal> query = ParseQuery("path(1, X)", &program);
  Result<Literal> factored = FactorRewrite(&program, query.value());
  ASSERT_TRUE(factored.ok()) << factored.status().ToString();
  Evaluation eval(&program);
  ASSERT_TRUE(eval.Run().ok());
  EXPECT_EQ(eval.Select(factored.value()).size(), 29u);
  // The factored predicate is unary: tuples derived ~ chain length, far
  // below the quadratic full closure.
  EXPECT_LT(eval.stats().tuples_inserted, 100u);
}

TEST(DatalogFactoring, RejectsNonMatchingPrograms) {
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      "edge(1,2).\npath(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- edge(X,Z), path(Z,Y).\n",  // right-linear
      &program).ok());
  Result<Literal> query = ParseQuery("path(1, X)", &program);
  EXPECT_FALSE(FactorRewrite(&program, query.value()).ok());
}

TEST(DatalogRelation, ProbeMatchesScan) {
  Relation rel(2);
  ConstPool consts;
  for (int i = 0; i < 100; ++i) {
    rel.Insert({consts.Int(i % 10), consts.Int(i)});
  }
  for (int key = 0; key < 10; ++key) {
    Value v = consts.Int(key);
    size_t scan = 0;
    for (const Tuple& t : rel.tuples()) {
      if (t[0] == v) ++scan;
    }
    EXPECT_EQ(rel.Probe(0, v).size(), scan);
  }
}

TEST(DatalogRelation, InsertDeduplicates) {
  Relation rel(1);
  ConstPool consts;
  EXPECT_TRUE(rel.Insert({consts.Int(1)}));
  EXPECT_FALSE(rel.Insert({consts.Int(1)}));
  EXPECT_EQ(rel.size(), 1u);
}

TEST(DatalogStratify, ComputesLayers) {
  DatalogProgram program;
  ASSERT_TRUE(ParseDatalog(
      "e(1,2).\nr(X) :- e(1,X).\nr(X) :- r(Y), e(Y,X).\n"
      "u(X) :- e(X,Y), not r(Y).\nv(X) :- u(X).\n",
      &program).ok());
  std::vector<int> stratum;
  ASSERT_TRUE(Stratify(program, &stratum).ok());
  PredId r = program.InternPred("r", 1);
  PredId u = program.InternPred("u", 1);
  PredId v = program.InternPred("v", 1);
  EXPECT_LT(stratum[r], stratum[u]);
  EXPECT_LE(stratum[u], stratum[v]);
}

}  // namespace
}  // namespace xsb::datalog
