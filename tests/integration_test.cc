// End-to-end scenarios combining subsystems the way a deductive-database
// application would: tabled recursion over bulk-loaded indexed data,
// updates invalidating tables, HiLog + tabling + negation in one program,
// and save/reload round trips through object files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "xsb/engine.h"

namespace xsb {
namespace {

TEST(Integration, BulkLoadIndexTableQuery) {
  // A flight network: bulk-load legs, index by origin and by (origin,dest),
  // then answer tabled reachability queries.
  std::string path = ::testing::TempDir() + "/xsb_flights.dat";
  {
    std::ofstream out(path);
    // A cycle through 200 airports plus some shortcuts.
    for (int i = 0; i < 200; ++i) {
      out << "a" << i << ",a" << (i + 1) % 200 << ",1\n";
      if (i % 10 == 0) out << "a" << i << ",a" << (i + 50) % 200 << ",2\n";
    }
  }
  Engine engine;
  auto loaded = engine.LoadFactsFormattedFile(path, "leg", 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 220u);
  ASSERT_TRUE(engine
                  .ConsultString(":- index(leg/3, [1, 1+2]).\n"
                                 ":- table reach/2.\n"
                                 "reach(X, Y) :- leg(X, Y, _).\n"
                                 "reach(X, Y) :- reach(X, Z), leg(Z, Y, _).\n")
                  .ok());
  // Every airport reaches every airport on the cycle.
  EXPECT_EQ(engine.Count("reach(a0, X)").value(), 200u);
  EXPECT_TRUE(engine.Holds("reach(a199, a0)").value());
  EXPECT_EQ(engine.Count("leg(a0, X, _)").value(), 2u);
  std::remove(path.c_str());
}

TEST(Integration, UpdatesAndTableInvalidation) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- dynamic(edge/2).\n"
                                 ":- table reach/2.\n"
                                 "edge(1, 2).\n"
                                 "reach(X, Y) :- edge(X, Y).\n"
                                 "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n")
                  .ok());
  EXPECT_EQ(engine.Count("reach(1, X)").value(), 1u);
  // Completed tables do not observe later updates until abolished — the
  // engine's documented semantics (tables are materialized views).
  ASSERT_TRUE(engine.Holds("assert(edge(2, 3))").value());
  EXPECT_EQ(engine.Count("reach(1, X)").value(), 1u);
  engine.AbolishAllTables();
  EXPECT_EQ(engine.Count("reach(1, X)").value(), 2u);
  // Retraction follows the same discipline.
  ASSERT_TRUE(engine.Holds("retract(edge(1, 2))").value());
  engine.AbolishAllTables();
  EXPECT_EQ(engine.Count("reach(1, X)").value(), 0u);
}

TEST(Integration, HiLogTablingAndNegationTogether) {
  // Parameterized reachability plus negation: nodes of graph g1 that are
  // not reachable from the start under the parameterized closure.
  Engine engine;
  ASSERT_TRUE(
      engine
          .ConsultString(
              ":- table apply/3. :- table unreachable/1.\n"
              "g1(s, a). g1(a, b). g1(c, d).\n"
              "node(s). node(a). node(b). node(c). node(d).\n"
              "closure(G)(X, Y) :- G(X, Y).\n"
              "closure(G)(X, Y) :- closure(G)(X, Z), G(Z, Y).\n"
              "reached(X) :- closure(g1)(s, X).\n"
              ":- table reached/1.\n"
              "unreachable(X) :- node(X), tnot reached(X).\n")
          .ok());
  auto rows = engine.FindAll("unreachable(X)");
  ASSERT_TRUE(rows.ok());
  std::ostringstream got;
  for (const Answer& answer : rows.value()) got << answer["X"] << " ";
  EXPECT_EQ(got.str(), "s c d ");  // s is not reached *from* s; c,d isolated
}

TEST(Integration, ObjectFileRoundTripPreservesBehavior) {
  std::string path = ::testing::TempDir() + "/xsb_integration.xob";
  {
    Engine engine;
    ASSERT_TRUE(engine
                    .ConsultString(":- table win/1.\n"
                                   "win(X) :- move(X,Y), tnot win(Y).\n"
                                   "move(1,2). move(2,3). move(3,4).\n")
                    .ok());
    ASSERT_TRUE(engine.SaveObjectFile(path).ok());
  }
  Engine restored;
  ASSERT_TRUE(restored.LoadObjectFile(path).ok());
  EXPECT_TRUE(restored.Holds("win(1)").value());
  EXPECT_FALSE(restored.Holds("win(2)").value());
  EXPECT_TRUE(restored.Holds("win(3)").value());
  std::remove(path.c_str());
}

TEST(Integration, FindallOverTabledPredicates) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table path/2.\n"
                                 "path(X,Y) :- edge(X,Y).\n"
                                 "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                                 "edge(1,2). edge(2,3). edge(3,1).\n")
                  .ok());
  // findall over a tabled goal from a non-tabled context: the table
  // completes before answers escape (local scheduling), so the list is
  // complete; tfindall agrees.
  EXPECT_TRUE(engine
                  .Holds("findall(Y, path(1,Y), L1), sort(L1, S), "
                         "tfindall(Y, path(1,Y), L2), sort(L2, S)")
                  .value());
  EXPECT_TRUE(engine.Holds("setof(Y, path(1,Y), [1,2,3])").value());
}

TEST(Integration, ModuleScopedTableAll) {
  // table_all in one consult unit must not table predicates of another.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(":- table_all.\n"
                                 "tc(X,Y) :- e(X,Y).\n"
                                 "tc(X,Y) :- tc(X,Z), e(Z,Y).\n"
                                 "e(1,2). e(2,1).\n")
                  .ok());
  ASSERT_TRUE(engine
                  .ConsultString("plain(X) :- e(1, X).\n")
                  .ok());
  Predicate* tc = engine.program().Lookup(
      engine.symbols().InternFunctor(engine.symbols().InternAtom("tc"), 2));
  Predicate* plain = engine.program().Lookup(
      engine.symbols().InternFunctor(engine.symbols().InternAtom("plain"),
                                     1));
  ASSERT_NE(tc, nullptr);
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(tc->tabled());
  EXPECT_FALSE(plain->tabled());
  EXPECT_EQ(engine.Count("tc(1, X)").value(), 2u);  // cycle terminates
}

}  // namespace
}  // namespace xsb
