#include <gtest/gtest.h>

#include "term/cell.h"
#include "term/store.h"
#include "term/symbols.h"

namespace xsb {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermTest() : store_(&symbols_) {}

  Word Atom(const char* name) {
    return AtomCell(symbols_.InternAtom(name));
  }
  Word S(const char* name, std::vector<Word> args) {
    FunctorId f = symbols_.InternFunctor(symbols_.InternAtom(name),
                                         static_cast<int>(args.size()));
    return store_.MakeStruct(f, args);
  }

  SymbolTable symbols_;
  TermStore store_;
};

TEST_F(TermTest, IntCellsRoundTripIncludingNegatives) {
  EXPECT_EQ(IntValue(IntCell(0)), 0);
  EXPECT_EQ(IntValue(IntCell(42)), 42);
  EXPECT_EQ(IntValue(IntCell(-42)), -42);
  EXPECT_EQ(IntValue(IntCell(1)), 1);
  EXPECT_EQ(IntValue(IntCell(-1)), -1);
  int64_t big = (1LL << 59);
  EXPECT_EQ(IntValue(IntCell(big)), big);
  EXPECT_EQ(IntValue(IntCell(-big)), -big);
}

TEST_F(TermTest, AtomInterningIsStable) {
  AtomId a = symbols_.InternAtom("foo");
  AtomId b = symbols_.InternAtom("foo");
  AtomId c = symbols_.InternAtom("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(symbols_.AtomName(a), "foo");
}

TEST_F(TermTest, FreshVariableIsUnbound) {
  Word v = store_.MakeVar();
  EXPECT_TRUE(store_.IsUnbound(v));
}

TEST_F(TermTest, UnifyVarWithAtomBinds) {
  Word v = store_.MakeVar();
  Word a = Atom("hello");
  EXPECT_TRUE(store_.Unify(v, a));
  EXPECT_EQ(store_.Deref(v), a);
}

TEST_F(TermTest, UnifyDistinctAtomsFails) {
  EXPECT_FALSE(store_.Unify(Atom("a"), Atom("b")));
  EXPECT_FALSE(store_.Unify(Atom("a"), IntCell(1)));
}

TEST_F(TermTest, UnifyStructsRecursively) {
  Word x = store_.MakeVar();
  Word y = store_.MakeVar();
  Word t1 = S("f", {Atom("a"), x});
  Word t2 = S("f", {y, Atom("b")});
  EXPECT_TRUE(store_.Unify(t1, t2));
  EXPECT_EQ(store_.Deref(x), Atom("b"));
  EXPECT_EQ(store_.Deref(y), Atom("a"));
}

TEST_F(TermTest, UnifyArityMismatchFails) {
  Word t1 = S("f", {Atom("a")});
  Word t2 = S("f", {Atom("a"), Atom("b")});
  EXPECT_FALSE(store_.Unify(t1, t2));
}

TEST_F(TermTest, UnifyFunctorMismatchFails) {
  EXPECT_FALSE(store_.Unify(S("f", {Atom("a")}), S("g", {Atom("a")})));
}

TEST_F(TermTest, TrailUndoRestoresBindings) {
  Word v = store_.MakeVar();
  size_t mark = store_.TrailMark();
  EXPECT_TRUE(store_.Unify(v, Atom("x")));
  EXPECT_FALSE(store_.IsUnbound(v));
  store_.UndoTrail(mark);
  EXPECT_TRUE(store_.IsUnbound(v));
}

TEST_F(TermTest, HeapTruncationAfterUndoIsSafe) {
  Word v = store_.MakeVar();
  size_t heap = store_.HeapMark();
  size_t trail = store_.TrailMark();
  Word t = S("f", {Atom("a"), Atom("b")});
  EXPECT_TRUE(store_.Unify(v, t));
  store_.UndoTrail(trail);
  store_.TruncateHeap(heap);
  EXPECT_TRUE(store_.IsUnbound(v));
  EXPECT_EQ(store_.heap_size(), heap);
}

TEST_F(TermTest, VarVarUnifyAliasesBothDirections) {
  Word v1 = store_.MakeVar();
  Word v2 = store_.MakeVar();
  EXPECT_TRUE(store_.Unify(v1, v2));
  EXPECT_TRUE(store_.Unify(v2, Atom("k")));
  EXPECT_EQ(store_.Deref(v1), Atom("k"));
}

TEST_F(TermTest, SharedVariableUnifiesConsistently) {
  // f(X, X) = f(a, b) must fail.
  Word x = store_.MakeVar();
  Word t1 = S("f", {x, x});
  size_t trail = store_.TrailMark();
  Word t2 = S("f", {Atom("a"), Atom("b")});
  EXPECT_FALSE(store_.Unify(t1, t2));
  store_.UndoTrail(trail);
  // f(X, X) = f(c, c) succeeds.
  Word t3 = S("f", {Atom("c"), Atom("c")});
  EXPECT_TRUE(store_.Unify(t1, t3));
}

TEST_F(TermTest, IdenticalDistinguishesVariantsFromEquals) {
  Word x = store_.MakeVar();
  Word y = store_.MakeVar();
  EXPECT_FALSE(store_.Identical(x, y));
  EXPECT_TRUE(store_.Identical(x, x));
  Word t1 = S("f", {Atom("a")});
  Word t2 = S("f", {Atom("a")});
  EXPECT_TRUE(store_.Identical(t1, t2));
}

TEST_F(TermTest, CompareFollowsStandardOrder) {
  Word v = store_.MakeVar();
  EXPECT_LT(store_.Compare(v, IntCell(1)), 0);       // Var < Int
  EXPECT_LT(store_.Compare(IntCell(5), Atom("a")), 0);  // Int < Atom
  EXPECT_LT(store_.Compare(Atom("a"), S("f", {v})), 0);  // Atom < Compound
  EXPECT_LT(store_.Compare(IntCell(-3), IntCell(2)), 0);
  EXPECT_LT(store_.Compare(Atom("abc"), Atom("abd")), 0);
  EXPECT_EQ(store_.Compare(S("f", {Atom("a")}), S("f", {Atom("a")})), 0);
  // Arity dominates name.
  EXPECT_LT(store_.Compare(S("z", {Atom("a")}),
                           S("a", {Atom("a"), Atom("b")})),
            0);
}

TEST_F(TermTest, GroundnessCheck) {
  Word x = store_.MakeVar();
  EXPECT_FALSE(store_.IsGround(x));
  EXPECT_TRUE(store_.IsGround(Atom("a")));
  Word t = S("f", {Atom("a"), x});
  EXPECT_FALSE(store_.IsGround(t));
  EXPECT_TRUE(store_.Unify(x, IntCell(3)));
  EXPECT_TRUE(store_.IsGround(t));
}

TEST_F(TermTest, CopyTermMakesFreshVariables) {
  Word x = store_.MakeVar();
  Word t = S("f", {x, x, Atom("a")});
  Word copy = store_.CopyTerm(t);
  // Copy has same shape but a different variable.
  Word cx = store_.Deref(store_.Arg(store_.Deref(copy), 0));
  EXPECT_TRUE(IsRef(cx));
  EXPECT_NE(store_.Deref(x), cx);
  // Shared variables stay shared in the copy.
  Word cx2 = store_.Deref(store_.Arg(store_.Deref(copy), 1));
  EXPECT_EQ(cx, cx2);
  // Binding the copy's var does not affect the original.
  EXPECT_TRUE(store_.Unify(cx, Atom("q")));
  EXPECT_TRUE(store_.IsUnbound(x));
}

TEST_F(TermTest, ListConstruction) {
  Word list = store_.MakeList({IntCell(1), IntCell(2)},
                              AtomCell(symbols_.nil()));
  Word d = store_.Deref(list);
  ASSERT_TRUE(IsStruct(d));
  EXPECT_EQ(symbols_.FunctorAtom(store_.StructFunctor(d)), symbols_.dot());
  EXPECT_EQ(store_.Deref(store_.Arg(d, 0)), IntCell(1));
}

}  // namespace
}  // namespace xsb
