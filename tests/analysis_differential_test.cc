// Differential tests for the analyzer's stratification verdict: every
// program the analyzer approves as stratified must be accepted by
// datalog::Stratify(), and must produce identical answers under SLG
// resolution, semi-naive bottom-up evaluation, and the well-founded
// semantics (with an empty undefined set). Programs the analyzer downgrades
// to WFS must be rejected by Stratify() but still have a well-founded
// model.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/to_datalog.h"
#include "bottomup/seminaive.h"
#include "wfs/wfs.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

// Deterministic pseudo-random edge sets, mirroring differential_test.cc.
struct RandomGraph {
  int num_nodes;
  std::vector<std::pair<int, int>> edges;
};

uint32_t NextRand(uint32_t* state) {
  *state = *state * 1664525u + 1013904223u;
  return *state >> 16;
}

RandomGraph MakeGraph(uint32_t seed) {
  uint32_t state = seed * 2654435761u + 1;
  RandomGraph g;
  g.num_nodes = 4 + static_cast<int>(NextRand(&state) % 4);  // 4..7
  int shape = static_cast<int>(NextRand(&state) % 3);
  if (shape == 0) {
    // Chain with random shortcuts.
    for (int i = 1; i < g.num_nodes; ++i) g.edges.push_back({i, i + 1});
    int extra = static_cast<int>(NextRand(&state) % 3);
    for (int i = 0; i < extra; ++i) {
      int a = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      int b = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      g.edges.push_back({a, b});
    }
  } else if (shape == 1) {
    // Full cycle plus chords.
    for (int i = 1; i <= g.num_nodes; ++i) {
      g.edges.push_back({i, i % g.num_nodes + 1});
    }
    int extra = static_cast<int>(NextRand(&state) % 3);
    for (int i = 0; i < extra; ++i) {
      int a = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      int b = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      g.edges.push_back({a, b});
    }
  } else {
    // Sparse random edges.
    int count = g.num_nodes + static_cast<int>(NextRand(&state) % 4);
    for (int i = 0; i < count; ++i) {
      int a = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      int b = 1 + static_cast<int>(NextRand(&state) % g.num_nodes);
      g.edges.push_back({a, b});
    }
  }
  return g;
}

std::string StratifiedProgram(const RandomGraph& g) {
  std::string text = ":- table path/2.\n";
  for (int i = 1; i <= g.num_nodes; ++i) {
    text += "node(" + std::to_string(i) + ").\n";
  }
  for (const auto& [a, b] : g.edges) {
    text += "edge(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  text += "path(X,Y) :- edge(X,Y).\n";
  text += "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  text += "unreach(X) :- node(X), tnot(path(1,X)).\n";
  return text;
}

std::string WinProgram(const RandomGraph& g) {
  std::string text = ":- table win/1.\n";
  text += "win(X) :- move(X,Y), tnot(win(Y)).\n";
  for (const auto& [a, b] : g.edges) {
    text += "move(" + std::to_string(a) + "," + std::to_string(b) + ").\n";
  }
  return text;
}

using AnswerSet = std::set<std::vector<std::string>>;

AnswerSet SlgAnswers(Engine& engine, const std::string& goal,
                     const std::vector<std::string>& vars) {
  AnswerSet out;
  Result<std::vector<Answer>> answers = engine.FindAll(goal);
  EXPECT_TRUE(answers.ok()) << goal << ": " << answers.status().message();
  if (!answers.ok()) return out;
  for (const Answer& answer : answers.value()) {
    std::vector<std::string> row;
    row.reserve(vars.size());
    for (const std::string& v : vars) row.push_back(answer[v]);
    out.insert(std::move(row));
  }
  return out;
}

AnswerSet RelationRows(const datalog::DatalogProgram& dp,
                       const std::vector<datalog::Tuple>& tuples) {
  AnswerSet out;
  for (const datalog::Tuple& tuple : tuples) {
    std::vector<std::string> row;
    row.reserve(tuple.size());
    for (datalog::Value v : tuple) row.push_back(dp.consts().ToString(v));
    out.insert(std::move(row));
  }
  return out;
}

class AnalysisDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

// Analyzer-stratified => Stratify() accepts, and SLG == semi-naive == WFS.
TEST_P(AnalysisDifferentialTest, StratifiedFamilyAgreesEverywhere) {
  RandomGraph g = MakeGraph(GetParam());
  std::string text = StratifiedProgram(g);

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(text).ok()) << text;
  analysis::AnalysisResult verdict = engine.Analyze();
  ASSERT_TRUE(verdict.stratified()) << text;

  AnswerSet slg_path = SlgAnswers(engine, "path(X, Y)", {"X", "Y"});
  AnswerSet slg_unreach = SlgAnswers(engine, "unreach(X)", {"X"});

  // Bottom-up: the analyzer's verdict implies Stratify() must accept.
  datalog::DatalogProgram dp;
  ASSERT_TRUE(analysis::ToDatalog(engine.program(), &dp).ok()) << text;
  ASSERT_TRUE(dp.CheckSafety().ok());
  std::vector<int> strata;
  ASSERT_TRUE(datalog::Stratify(dp, &strata).ok()) << text;

  datalog::Evaluation eval(&dp);
  ASSERT_TRUE(eval.Run().ok());
  datalog::PredId path_id = dp.InternPred("path", 2);
  datalog::PredId unreach_id = dp.InternPred("unreach", 1);
  EXPECT_EQ(RelationRows(dp, eval.relation(path_id).tuples()), slg_path);
  EXPECT_EQ(RelationRows(dp, eval.relation(unreach_id).tuples()),
            slg_unreach);

  // WFS: a stratified program has a two-valued well-founded model that
  // coincides with the other two evaluations.
  datalog::DatalogProgram dp2;
  ASSERT_TRUE(analysis::ToDatalog(engine.program(), &dp2).ok());
  Result<wfs::WellFoundedModel> model = wfs::ComputeWellFounded(&dp2);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().num_undefined(), 0u);
  datalog::PredId path2 = dp2.InternPred("path", 2);
  datalog::PredId unreach2 = dp2.InternPred("unreach", 1);
  for (const std::vector<std::string>& row : slg_path) {
    datalog::Tuple t{dp2.consts().Int(std::stoll(row[0])),
                     dp2.consts().Int(std::stoll(row[1]))};
    EXPECT_EQ(model.value().TruthOf(path2, t), wfs::Truth::kTrue);
  }
  for (int i = 1; i <= g.num_nodes; ++i) {
    datalog::Tuple t{dp2.consts().Int(i)};
    wfs::Truth want = slg_unreach.count({std::to_string(i)}) > 0
                          ? wfs::Truth::kTrue
                          : wfs::Truth::kFalse;
    EXPECT_EQ(model.value().TruthOf(unreach2, t), want) << "node " << i;
  }
}

// Analyzer says WFS-required => Stratify() rejects, but the well-founded
// model exists (the downgrade path). Where SLG's dynamic stratification
// still succeeds, its verdict must match the WFS truth value.
TEST_P(AnalysisDifferentialTest, WinFamilyDowngradesToWfs) {
  RandomGraph g = MakeGraph(GetParam());
  std::string text = WinProgram(g);

  Engine engine;
  ASSERT_TRUE(engine.ConsultString(text).ok()) << text;
  analysis::AnalysisResult verdict = engine.Analyze();
  ASSERT_FALSE(verdict.stratified()) << text;
  ASSERT_EQ(verdict.verdict, analysis::StratVerdict::kWfsRequired);

  datalog::DatalogProgram dp;
  ASSERT_TRUE(analysis::ToDatalog(engine.program(), &dp).ok()) << text;
  std::vector<int> strata;
  EXPECT_FALSE(datalog::Stratify(dp, &strata).ok()) << text;

  Result<wfs::WellFoundedModel> model = wfs::ComputeWellFounded(&dp);
  ASSERT_TRUE(model.ok()) << text;

  datalog::PredId win_id = dp.InternPred("win", 1);
  for (int i = 1; i <= g.num_nodes; ++i) {
    Result<bool> held = engine.Holds("win(" + std::to_string(i) + ")");
    datalog::Tuple t{dp.consts().Int(i)};
    if (held.ok()) {
      // Dynamically stratified for this goal: SLG and WFS must agree on a
      // two-valued answer.
      wfs::Truth truth = model.value().TruthOf(win_id, t);
      EXPECT_EQ(held.value(), truth == wfs::Truth::kTrue) << "win " << i;
      EXPECT_NE(truth, wfs::Truth::kUndefined) << "win " << i;
    } else {
      // The runtime rejected the goal; the consult-time verdict predicted
      // this and the WFS downgrade still yields a model.
      EXPECT_EQ(held.status().code(), ErrorCode::kStratification);
      EXPECT_NE(held.status().message().find("S001"), std::string::npos);
    }
    engine.AbolishAllTables();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisDifferentialTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace xsb
