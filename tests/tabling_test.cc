#include <gtest/gtest.h>

#include <set>
#include <string>

#include "db/loader.h"
#include "engine/machine.h"
#include "parser/reader.h"
#include "parser/writer.h"
#include "tabling/evaluator.h"
#include "term/store.h"
#include "xsb/engine.h"

namespace xsb {
namespace {

class TablingTest : public ::testing::Test {
 protected:
  TablingTest()
      : store_(&symbols_),
        program_(&symbols_),
        loader_(&store_, &program_),
        machine_(&store_, &program_),
        evaluator_(&machine_) {}

  void Load(const std::string& text) {
    Status s = loader_.ConsultString(text);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Word Parse(const std::string& text) {
    std::string buffer = text + " .";
    Reader reader(&store_, program_.ops(), buffer, program_.hilog_atoms());
    Result<Word> r = reader.ReadClause();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  }

  size_t Count(const std::string& goal) {
    Result<size_t> r = machine_.CountSolutions(Parse(goal));
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() ? r.value() : size_t(-1);
  }

  bool Holds(const std::string& goal) {
    size_t trail = store_.TrailMark();
    Result<bool> r = machine_.SolveOnce(Parse(goal));
    store_.UndoTrail(trail);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    return r.ok() && r.value();
  }

  Status SolveStatus(const std::string& goal) {
    return machine_.Solve(Parse(goal),
                          []() { return SolveAction::kContinue; });
  }

  std::vector<std::string> Answers(const std::string& templ,
                                   const std::string& goal) {
    Word pair = Parse("'$pair'(" + templ + "," + goal + ")");
    Word t = store_.Arg(store_.Deref(pair), 0);
    Word g = store_.Arg(store_.Deref(pair), 1);
    Result<std::vector<FlatTerm>> r = machine_.FindAll(t, g);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status().ToString();
    std::vector<std::string> out;
    if (!r.ok()) return out;
    WriteOptions options;
    options.use_operators = false;
    for (const FlatTerm& flat : r.value()) {
      out.push_back(WriteFlat(&store_, *program_.ops(), flat, options));
    }
    return out;
  }

  // Loads move/2 facts for a complete binary tree of the given height
  // (node 1 is the root; children of i are 2i and 2i+1).
  void LoadBinaryTree(int height) {
    std::string text;
    int internal = (1 << height) - 1;
    for (int i = 1; i <= internal; ++i) {
      text += "move(" + std::to_string(i) + "," + std::to_string(2 * i) +
              ").\nmove(" + std::to_string(i) + "," +
              std::to_string(2 * i + 1) + ").\n";
    }
    Load(text);
  }

  SymbolTable symbols_;
  TermStore store_;
  Program program_;
  Loader loader_;
  Machine machine_;
  Evaluator evaluator_;
};

TEST_F(TablingTest, LeftRecursionTerminatesOnCycles) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3). edge(3,1).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  // Every node reaches every node on a 3-cycle.
  EXPECT_EQ(Count("path(1,X)"), 3u);
  EXPECT_EQ(Answers("X", "path(1,X)"),
            (std::vector<std::string>{"2", "3", "1"}));
}

TEST_F(TablingTest, RightRecursionTerminatesOnCycles) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3). edge(3,1).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Z) :- edge(X,Y), path(Y,Z).\n");
  EXPECT_EQ(Count("path(1,X)"), 3u);
  EXPECT_EQ(Count("path(X,Y)"), 9u);
}

TEST_F(TablingTest, DoubleRecursion) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3). edge(3,4). edge(4,1).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Z) :- path(X,Y), path(Y,Z).\n");
  EXPECT_EQ(Count("path(1,X)"), 4u);
  EXPECT_EQ(Count("path(X,Y)"), 16u);
}

TEST_F(TablingTest, ChainAnswersAreDeduplicated) {
  // A diamond produces 2 derivations of the same answer; tabling returns 1.
  Load(":- table path/2.\n"
       "edge(a,b1). edge(a,b2). edge(b1,c). edge(b2,c).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  EXPECT_EQ(Count("path(a,c)"), 1u);
  EXPECT_GE(evaluator_.tables().stats().duplicate_answers, 1u);
}

TEST_F(TablingTest, CompletedTablesAreReusedAcrossQueries) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  EXPECT_EQ(Count("path(1,X)"), 2u);
  uint64_t created = evaluator_.tables().stats().subgoals_created;
  // Re-running the same query must not create new tables or episodes.
  EXPECT_EQ(Count("path(1,X)"), 2u);
  EXPECT_EQ(evaluator_.tables().stats().subgoals_created, created);
}

TEST_F(TablingTest, VariantCallsShareATable) {
  Load(":- table p/2.\n"
       "p(X,Y) :- q(X,Y). q(1,2). q(1,3).\n");
  EXPECT_EQ(Count("p(A,B)"), 2u);
  EXPECT_EQ(Count("p(U,V)"), 2u);  // a variant: same table
  EXPECT_EQ(evaluator_.tables().num_subgoals(), 1u);
  EXPECT_EQ(Count("p(1,V)"), 2u);  // not a variant: its own table
  EXPECT_EQ(evaluator_.tables().num_subgoals(), 2u);
}

TEST_F(TablingTest, NonGroundAnswers) {
  Load(":- table p/1.\np(f(_)).\np(g(a)).\n");
  EXPECT_EQ(Count("p(X)"), 2u);
  EXPECT_TRUE(Holds("p(f(anything))"));
}

TEST_F(TablingTest, SameGeneration) {
  Load(":- table sg/2.\n"
       "par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1).\n"
       "sg(X, X).\n"
       "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n");
  // c1 and c2 share parent p1; p1 and p2 share grandparent g1.
  EXPECT_TRUE(Holds("sg(c1, c2)"));
  EXPECT_TRUE(Holds("sg(p1, p2)"));
  EXPECT_FALSE(Holds("sg(c1, p2)"));
}

TEST_F(TablingTest, MutuallyRecursiveTabledPredicates) {
  Load(":- table even/1. :- table odd/1.\n"
       "num(0, none). num(s(X), X).\n"
       "even(0). even(s(X)) :- odd(X).\n"
       "odd(s(X)) :- even(X).\n");
  EXPECT_TRUE(Holds("even(s(s(0)))"));
  EXPECT_FALSE(Holds("odd(s(s(0)))"));
  EXPECT_TRUE(Holds("odd(s(s(s(0))))"));
}

TEST_F(TablingTest, TabledAndNonTabledMix) {
  Load(":- table reach/2.\n"
       "edge(1,2). edge(2,3).\n"
       "reach(X,Y) :- edge(X,Y).\n"
       "reach(X,Y) :- reach(X,Z), edge(Z,Y).\n"
       "report(X, Y) :- reach(X, Y), Y > 2.\n");
  EXPECT_EQ(Answers("Y", "report(1, Y)"), (std::vector<std::string>{"3"}));
}

TEST_F(TablingTest, WinOverTreeStratified) {
  Load(":- table win/1.\n"
       "win(X) :- move(X,Y), tnot win(Y).\n");
  LoadBinaryTree(3);  // leaves are 8..15: they have no moves, so they lose
  EXPECT_FALSE(Holds("win(8)"));   // leaf: no move
  EXPECT_TRUE(Holds("win(4)"));    // moves to losing leaves
  EXPECT_FALSE(Holds("win(2)"));   // both children winning
  EXPECT_TRUE(Holds("win(1)"));
}

TEST_F(TablingTest, WinOverChain) {
  Load(":- table win/1.\n"
       "win(X) :- move(X,Y), tnot win(Y).\n"
       "move(1,2). move(2,3). move(3,4).\n");
  // 4 loses, 3 wins, 2 loses, 1 wins.
  EXPECT_TRUE(Holds("win(1)"));
  EXPECT_FALSE(Holds("win(2)"));
  EXPECT_TRUE(Holds("win(3)"));
  EXPECT_FALSE(Holds("win(4)"));
}

TEST_F(TablingTest, ExistentialNegationSameAnswersAsDefault) {
  Load(":- table win/1. :- table ewin/1.\n"
       "win(X) :- move(X,Y), tnot win(Y).\n"
       "ewin(X) :- move(X,Y), e_tnot ewin(Y).\n");
  LoadBinaryTree(4);
  for (int node : {1, 2, 3, 4, 7, 8, 15, 16, 31}) {
    std::string n = std::to_string(node);
    EXPECT_EQ(Holds("win(" + n + ")"), Holds("ewin(" + n + ")")) << node;
  }
}

TEST_F(TablingTest, ExistentialNegationDisposesTables) {
  Load(":- table win/1.\n"
       "win(X) :- move(X,Y), e_tnot win(Y).\n");
  LoadBinaryTree(3);  // odd height: the root wins
  EXPECT_TRUE(Holds("win(1)"));
  EXPECT_GT(evaluator_.tables().stats().subgoals_disposed, 0u);
  EXPECT_GT(evaluator_.stats().existential_aborts, 0u);
}

TEST_F(TablingTest, ExistentialNegationVisitsFewerNodes) {
  Load(":- table win/1. :- table ewin/1.\n"
       "win(X) :- move(X,Y), tnot win(Y).\n"
       "ewin(X) :- move(X,Y), e_tnot ewin(Y).\n");
  LoadBinaryTree(7);  // odd height: the root wins
  uint64_t before = evaluator_.tables().stats().subgoals_created;
  EXPECT_TRUE(Holds("ewin(1)"));
  uint64_t existential = evaluator_.tables().stats().subgoals_created - before;
  before = evaluator_.tables().stats().subgoals_created;
  EXPECT_TRUE(Holds("win(1)"));
  uint64_t full = evaluator_.tables().stats().subgoals_created - before;
  // Default SLG evaluates the full 2^n tree; existential ~ sqrt(2)^n.
  EXPECT_LT(existential * 4, full);
}

TEST_F(TablingTest, NonStratifiedProgramIsReported) {
  Load(":- table win/1.\n"
       "win(X) :- move(X,Y), tnot win(Y).\n"
       "move(a,b). move(b,a).\n");  // cyclic: not modularly stratified
  Status s = SolveStatus("win(a)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kStratification);
}

TEST_F(TablingTest, FlounderingTnotIsReported) {
  Load(":- table p/1.\np(1).\n");
  Status s = SolveStatus("tnot p(X)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInstantiation);
}

TEST_F(TablingTest, TnotOnNonTabledIsReported) {
  Load("q(1).\n");
  Status s = SolveStatus("tnot q(1)");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kType);
}

TEST_F(TablingTest, TnotOnCompletedTableIsConstantTime) {
  Load(":- table p/1.\np(1). p(2).\n");
  EXPECT_FALSE(Holds("tnot p(1)"));
  EXPECT_TRUE(Holds("tnot p(3)"));
  uint64_t batches = evaluator_.stats().batches;
  EXPECT_FALSE(Holds("tnot p(1)"));  // table complete: no new batch
  EXPECT_EQ(evaluator_.stats().batches, batches);
}

TEST_F(TablingTest, TFindallCollectsCompletedAnswers) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3). edge(3,1).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  EXPECT_TRUE(Holds("tfindall(Y, path(1,Y), L), length(L, 3)"));
}

TEST_F(TablingTest, EarlyCompletionOnGroundCalls) {
  Machine machine2(&store_, &program_);
  Evaluator::Options options;
  options.early_completion = true;
  Evaluator evaluator2(&machine2, options);
  Load(":- table t/1.\n"
       "t(X) :- member_(X, [1,2,3]).\n"
       "member_(X, [X|_]). member_(X, [_|T]) :- member_(X, T).\n");
  size_t trail = store_.TrailMark();
  Result<bool> r = machine2.SolveOnce(Parse("t(2)"));
  store_.UndoTrail(trail);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_GT(evaluator2.stats().early_completions, 0u);
  // Without early completion the default evaluator runs t(2)'s generator to
  // exhaustion but computes the same result.
  EXPECT_TRUE(Holds("t(2)"));
  EXPECT_EQ(evaluator_.stats().early_completions, 0u);
}

TEST_F(TablingTest, SldnfModeBypassesTables) {
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n");  // right recursion: acyclic ok
  machine_.set_ignore_tabling(true);
  EXPECT_EQ(Count("path(1,X)"), 2u);
  EXPECT_EQ(evaluator_.tables().num_subgoals(), 0u);
  machine_.set_ignore_tabling(false);
  EXPECT_EQ(Count("path(1,X)"), 2u);
  EXPECT_GT(evaluator_.tables().num_subgoals(), 0u);
}

TEST_F(TablingTest, TabledHiLogPredicate) {
  Load(":- table apply/3.\n"
       "edge1(1,2). edge1(2,3). edge1(3,1).\n"
       "path(Graph)(X, Y) :- Graph(X, Y).\n"
       "path(Graph)(X, Y) :- path(Graph)(X, Z), Graph(Z, Y).\n");
  EXPECT_EQ(Count("path(edge1)(1, X)"), 3u);
}

TEST_F(TablingTest, AbolishAllTablesForcesRecomputation) {
  Load(":- table p/1.\np(1).\n");
  EXPECT_EQ(Count("p(X)"), 1u);
  uint64_t created = evaluator_.tables().stats().subgoals_created;
  evaluator_.AbolishAllTables();
  EXPECT_EQ(Count("p(X)"), 1u);
  EXPECT_GT(evaluator_.tables().stats().subgoals_created, created);
}

TEST_F(TablingTest, LargeChainLinearAnswers) {
  std::string text = ":- table path/2.\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  for (int i = 1; i < 500; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  Load(text);
  EXPECT_EQ(Count("path(1,X)"), 499u);
}

TEST_F(TablingTest, CycleDoesNotLoop) {
  std::string text = ":- table path/2.\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n";
  constexpr int kCycle = 64;
  for (int i = 1; i <= kCycle; ++i) {
    text += "edge(" + std::to_string(i) + "," +
            std::to_string(i % kCycle + 1) + ").\n";
  }
  Load(text);
  EXPECT_EQ(Count("path(1,X)"), static_cast<size_t>(kCycle));
}

TEST_F(TablingTest, PropertyTabledMatchesSldnfOnAcyclicGraphs) {
  // Property: on acyclic graphs both strategies agree on the answer set.
  std::string text = ":- table path/2.\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
      ":- table rpath/2.\n"
      "redge(X,Y) :- edge(X,Y).\n"
      "rpath(X,Y) :- redge(X,Y).\n"
      "rpath(X,Y) :- redge(X,Z), rpath(Z,Y).\n";
  // A small DAG: i -> i+1 and i -> i+2.
  for (int i = 0; i < 12; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 2) + ").\n";
  }
  Load(text);
  for (int start = 0; start < 12; start += 3) {
    std::string q = std::to_string(start);
    size_t tabled = Count("path(" + q + ",X)");
    machine_.set_ignore_tabling(true);
    // SLDNF loops on the left-recursive path/2 (the very problem tabling
    // solves), so the SLDNF side runs the right-recursive rpath/2 and
    // deduplicates its answers.
    size_t sldnf_distinct = 0;
    {
      Word pair = Parse("'$pair'(X, rpath(" + q + ",X))");
      Word templ = store_.Arg(store_.Deref(pair), 0);
      Word g = store_.Arg(store_.Deref(pair), 1);
      Result<std::vector<FlatTerm>> all = machine_.FindAll(templ, g);
      ASSERT_TRUE(all.ok());
      std::vector<FlatTerm> v = all.value();
      std::sort(v.begin(), v.end(),
                [](const FlatTerm& a, const FlatTerm& b) {
                  return a.cells < b.cells;
                });
      v.erase(std::unique(v.begin(), v.end()), v.end());
      sldnf_distinct = v.size();
    }
    machine_.set_ignore_tabling(false);
    EXPECT_EQ(tabled, sldnf_distinct) << "start " << start;
  }
}

class TablingTrieTest : public TablingTest {};

TEST_F(TablingTrieTest, HashAblationModeGivesSameResults) {
  // The default store is the answer trie; build a second evaluator in the
  // legacy hash-set mode on a fresh machine and check agreement.
  Machine machine2(&store_, &program_);
  Evaluator::Options options;
  options.answer_trie = false;
  Evaluator evaluator2(&machine2, options);
  Load(":- table path/2.\n"
       "edge(1,2). edge(2,3). edge(3,1). edge(1,3).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- path(X,Z), edge(Z,Y).\n");
  Result<size_t> trie_count = machine_.CountSolutions(Parse("path(1,X)"));
  Result<size_t> hash_count = machine2.CountSolutions(Parse("path(1,X)"));
  ASSERT_TRUE(trie_count.ok());
  ASSERT_TRUE(hash_count.ok());
  EXPECT_EQ(trie_count.value(), hash_count.value());
  EXPECT_EQ(trie_count.value(), 3u);
}

TEST_F(TablingTrieTest, TrieStoreReportsNodesAndInterns) {
  Load(":- table path/2.\n"
       "edge(a,b). edge(b,c). edge(c,d).\n"
       "path(X,Y) :- edge(X,Y).\n"
       "path(X,Y) :- edge(X,Z), path(Z,Y).\n");
  Result<size_t> n = machine_.CountSolutions(Parse("path(a,X)"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  const TableSpace& tables = evaluator_.tables();
  EXPECT_GT(tables.total_answers(), 0u);
  EXPECT_GT(tables.total_trie_nodes(), 0u);
  // Trie nodes never outnumber total inserted tokens, and shared prefixes
  // make them strictly fewer than answers * path-length here.
  EXPECT_GT(tables.table_bytes(), 0u);
}

}  // namespace
}  // namespace xsb

namespace xsb {
namespace {

class CutSafetyTest : public TablingTest {};

TEST_F(CutSafetyTest, CutAfterTabledCallIsRejected) {
  Status s = loader_.ConsultString(
      ":- table p/1.\np(1).\n"
      "bad(X) :- p(X), !.\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kPermission);
}

TEST_F(CutSafetyTest, CutBeforeTabledCallIsAllowed) {
  Status s = loader_.ConsultString(
      ":- table p/1.\np(1).\n"
      "ok(X) :- !, p(X).\n"
      "ok2(X) :- q(X), !, r(X).\nq(1). r(1).\n");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(Holds("ok(1)"));
}

TEST_F(CutSafetyTest, CutInsideNegationScopeIsAllowed) {
  // tnot completes its table before returning, so a later cut is safe.
  Status s = loader_.ConsultString(
      ":- table p/1.\np(1).\n"
      "ok(X) :- tnot p(X), !.\n"
      "ok(_).\n");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// --- Incremental table maintenance -------------------------------------------

// These run through the Engine facade: the update/requery lifecycle spans
// consult, builtins, the evaluator and the table space, and the cursor tests
// below need Engine::ForEach's retired-snapshot release discipline.

const char kChainProgram[] =
    ":- table path/2.\n"
    ":- incremental(edge/2).\n"
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
    "edge(1,2). edge(2,3). edge(3,4). edge(4,5).\n";

std::string StateOf(Engine& engine, const std::string& goal) {
  std::string state;
  Status status =
      engine.ForEach("table_state(" + goal + ", S)", [&](const Answer& a) {
        state = a["S"];
        return false;
      });
  EXPECT_TRUE(status.ok()) << status.message();
  return state;
}

TEST(IncrementalMaintenance, AssertInvalidatesAndRequeryAgrees) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  EXPECT_EQ(StateOf(engine, "path(1, Y)"), "undefined");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "complete");

  ASSERT_TRUE(engine.Holds("assert(edge(5,6))").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 15u);
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "complete");
  EXPECT_GE(engine.evaluator().tables().stats().tables_reevaluated, 1u);
}

TEST(IncrementalMaintenance, RetractInvalidatesAndRequeryDropsAnswers) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
  ASSERT_TRUE(engine.Holds("retract(edge(4,5))").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
  // Retracting a fact that is not there changes nothing.
  EXPECT_FALSE(engine.Holds("retract(edge(4,5))").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "complete");
}

TEST(IncrementalMaintenance, RetractallAndAbolishNotifyToo) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
  ASSERT_TRUE(engine.Holds("retractall(edge(_, _))").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 0u);

  ASSERT_TRUE(engine.Holds("assert(edge(1,2))").value());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 1u);
  ASSERT_TRUE(engine.Holds("abolish(edge/2)").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 0u);
}

TEST(IncrementalMaintenance, AbolishTableCallDisposesOneVariant) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  EXPECT_EQ(engine.Count("path(1, Y)").value(), 4u);
  EXPECT_EQ(engine.Count("path(2, Y)").value(), 3u);
  EXPECT_TRUE(engine.Holds("abolish_table_call(path(1, Y))").value());
  EXPECT_EQ(StateOf(engine, "path(1, Y)"), "undefined");
  EXPECT_EQ(StateOf(engine, "path(2, Y)"), "complete");
  // A second abolish finds nothing; the next call rebuilds the table.
  EXPECT_FALSE(engine.Holds("abolish_table_call(path(1, Y))").value());
  EXPECT_EQ(engine.Count("path(1, Y)").value(), 4u);
}

TEST(IncrementalMaintenance, LateRuntimeDeclarationInvalidatesConservatively) {
  // Tables built before a predicate becomes incremental carry no dependency
  // entries for it; the incremental/1 builtin must invalidate them all.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(
                      ":- table path/2.\n"
                      ":- dynamic(edge/2).\n"
                      "path(X,Y) :- edge(X,Y).\n"
                      "path(X,Y) :- path(X,Z), edge(Z,Y).\n"
                      "edge(1,2). edge(2,3).\n")
                  .ok());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 3u);
  ASSERT_TRUE(engine.Holds("incremental(edge/2)").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  ASSERT_TRUE(engine.Holds("assert(edge(3,4))").value());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
  // The re-evaluated table captured its dependencies at runtime, so further
  // updates invalidate it precisely.
  ASSERT_TRUE(engine.Holds("assert(edge(4,5))").value());
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "invalid");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
}

TEST(IncrementalMaintenance, UpdateDuringEvaluationCompletesTableAsInvalid) {
  // An assert fired from inside a tabled derivation: the running table may
  // already have read the old clause set, so it must complete as invalid and
  // re-evaluate on the next call.
  Engine engine;
  ASSERT_TRUE(engine
                  .ConsultString(
                      ":- table p/1.\n"
                      ":- incremental(d/1).\n"
                      "d(1).\n"
                      "p(X) :- d(X).\n"
                      "p(X) :- X = 0, \\+ d(2), assert(d(2)), fail.\n")
                  .ok());
  EXPECT_EQ(engine.Count("p(X)").value(), 1u);
  EXPECT_EQ(StateOf(engine, "p(X)"), "invalid");
  EXPECT_EQ(engine.Count("p(X)").value(), 2u);
  EXPECT_EQ(StateOf(engine, "p(X)"), "complete");
}

TEST(IncrementalMaintenance, BaselineModeAbolishesAndRecomputes) {
  Engine::Options options;
  options.incremental = false;
  Engine engine(options);
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  // Consulting the facts already fired one update event per edge clause.
  uint64_t consult_events = engine.evaluator().stats().update_events;
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
  ASSERT_TRUE(engine.Holds("assert(edge(5,6))").value());
  // Baseline: the update dropped the whole table space.
  EXPECT_EQ(StateOf(engine, "path(X, Y)"), "undefined");
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 15u);
  ASSERT_TRUE(engine.Holds("retract(edge(5,6))").value());
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
  EXPECT_EQ(engine.evaluator().stats().update_events, consult_events + 2);
}

// --- Open-cursor freeze semantics --------------------------------------------

TEST(IncrementalCursor, RetractAndReevalDuringOpenEnumerationKeepsSnapshot) {
  // Regression: a retract + nested requery while an answer cursor is open
  // retires the cursor's answer table. The cursor must keep enumerating its
  // frozen snapshot (this is a use-after-free without retirement; the ASan
  // job exists to prove it).
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 10u);

  std::set<std::string> outer;
  size_t nested_count = 0;
  size_t retired_during = 0;
  bool mutated = false;
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&](const Answer& a) {
                             outer.insert(a["X"] + "," + a["Y"]);
                             if (!mutated) {
                               mutated = true;
                               EXPECT_TRUE(
                                   engine.Holds("retract(edge(4,5))").value());
                               // Nested requery: re-evaluates the invalid
                               // table out from under the outer cursor.
                               nested_count =
                                   engine.Count("path(X, Y)").value();
                               retired_during = engine.evaluator()
                                                    .tables()
                                                    .num_retired_answers();
                             }
                             return true;
                           })
                  .ok());
  EXPECT_EQ(outer.size(), 10u) << "outer cursor must see its frozen snapshot";
  EXPECT_EQ(nested_count, 6u) << "nested query must see the updated world";
  EXPECT_GT(retired_during, 0u);
  // The snapshot is released once the outermost query unwinds.
  EXPECT_EQ(engine.evaluator().tables().num_retired_answers(), 0u);
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
}

TEST(IncrementalCursor, AbolishAllTablesDuringOpenEnumerationKeepsSnapshot) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 10u);
  size_t outer = 0;
  bool abolished = false;
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&](const Answer&) {
                             ++outer;
                             if (!abolished) {
                               abolished = true;
                               engine.AbolishAllTables();
                             }
                             return true;
                           })
                  .ok());
  EXPECT_EQ(outer, 10u);
  EXPECT_EQ(engine.evaluator().tables().num_retired_answers(), 0u);
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
}

// --- Substitution-factored answer return under table churn --------------------

TEST(FactoredCursor, FactoredReturnSurvivesRetractDuringOpenEnumeration) {
  // The factored answer path keeps two pieces of retired-table state alive
  // across an open cursor: the answer trie's binding streams AND the call
  // template they are spliced against. A retract plus nested requery
  // mid-enumeration retires the cursor's table; the factored cursor must
  // keep binding against the retired trie's own template copy (a dangling
  // pointer if the template were borrowed from the subgoal — the ASan job
  // proves it).
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 10u);

  uint64_t factored_before = engine.machine().stats().factored_answer_returns;
  std::set<std::string> outer;
  bool mutated = false;
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&](const Answer& a) {
                             outer.insert(a["X"] + "," + a["Y"]);
                             if (!mutated) {
                               mutated = true;
                               EXPECT_TRUE(
                                   engine.Holds("retract(edge(4,5))").value());
                               EXPECT_EQ(engine.Count("path(X, Y)").value(),
                                         6u);
                             }
                             return true;
                           })
                  .ok());
  // The frozen snapshot delivered every pre-retract answer, each with the
  // correct bindings (i < j over the 5-node chain).
  std::set<std::string> expected;
  for (int i = 1; i <= 5; ++i) {
    for (int j = i + 1; j <= 5; ++j) {
      expected.insert(std::to_string(i) + "," + std::to_string(j));
    }
  }
  EXPECT_EQ(outer, expected);
  EXPECT_GT(engine.machine().stats().factored_answer_returns, factored_before)
      << "completed-table enumeration must take the factored path";
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
}

TEST(FactoredCursor, AbolishTableCallDuringOpenEnumerationKeepsSnapshot) {
  // abolish_table_call/1 clears the variant's call-trie payload and retires
  // its answers while a factored cursor is mid-enumeration. The cursor must
  // finish its frozen snapshot; a fresh call re-creates the table.
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 10u);

  uint64_t factored_before = engine.machine().stats().factored_answer_returns;
  std::set<std::string> outer;
  bool abolished = false;
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&](const Answer& a) {
                             outer.insert(a["X"] + "," + a["Y"]);
                             if (!abolished) {
                               abolished = true;
                               EXPECT_TRUE(
                                   engine
                                       .Holds("abolish_table_call(path(A, B))")
                                       .value());
                               EXPECT_EQ(StateOf(engine, "path(A, B)"),
                                         "undefined");
                             }
                             return true;
                           })
                  .ok());
  EXPECT_EQ(outer.size(), 10u);
  EXPECT_GT(engine.machine().stats().factored_answer_returns, factored_before);
  EXPECT_EQ(engine.evaluator().tables().num_retired_answers(), 0u);
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 10u);
}

TEST(IncrementalCursor, EarlyStopStillReleasesRetiredSnapshots) {
  Engine engine;
  ASSERT_TRUE(engine.ConsultString(kChainProgram).ok());
  ASSERT_EQ(engine.Count("path(X, Y)").value(), 10u);
  // Stop after the first answer, having mutated mid-flight.
  ASSERT_TRUE(engine
                  .ForEach("path(X, Y)",
                           [&](const Answer&) {
                             EXPECT_TRUE(
                                 engine.Holds("retract(edge(1,2))").value());
                             EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
                             return false;
                           })
                  .ok());
  EXPECT_EQ(engine.evaluator().tables().num_retired_answers(), 0u);
  EXPECT_EQ(engine.Count("path(X, Y)").value(), 6u);
}

}  // namespace
}  // namespace xsb
